"""Monte-Carlo testing of the subspace-embedding property.

Implements the empirical side of Definition 1: estimate, for a sketch
family and a (hard) instance distribution, the probability that a sampled
sketch fails to ε-embed a sampled subspace — and search for the minimal
target dimension ``m*`` at which the failure rate drops to ``δ``.  The
measured ``m*`` curves are what the experiments compare against the
paper's lower-bound formulas.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from typing import List, Optional, Tuple

import numpy as np

from ..hardinstances.dbeta import HardInstance
from ..linalg.distortion import distortion_of_product
from ..observe.ledger import emit_event
from ..observe.trace import trace
from ..sketch.base import Sketch, SketchFamily, sample_sketch
from ..utils.parallel import TrialExecutor
from ..utils.rng import RngLike, as_generator, spawn
from ..utils.stats import BernoulliEstimate
from ..utils.validation import check_epsilon, check_positive_int, check_probability

__all__ = [
    "failure_estimate",
    "distortion_samples",
    "MinimalMResult",
    "minimal_m",
]


def _distortion_trial(family: SketchFamily, instance: HardInstance,
                      fixed: Optional[Sketch],
                      seed: np.random.SeedSequence) -> float:
    """One Monte-Carlo trial: the distortion of ``ΠU`` for fresh draws.

    Module-level (not a closure) so :class:`TrialExecutor` can pickle it
    for process-pool workers.  All randomness comes from ``seed``, making
    the trial independent of execution order.

    Fresh sketches are drawn ``lazy=True`` so kernel-backed families skip
    scipy matrix assembly entirely; ``basis_image`` then runs on the
    matrix-free kernel (bit-identical to the materialized path).
    """
    sketch_seed, draw_seed = seed.spawn(2)
    sketch = fixed if fixed is not None \
        else sample_sketch(family, sketch_seed, lazy=True)
    draw = instance.sample_draw(draw_seed)
    return distortion_of_product(sketch.basis_image(draw))


def failure_estimate(family: SketchFamily, instance: HardInstance,
                     epsilon: float, trials: int,
                     rng: RngLike = None,
                     fresh_sketch: bool = True,
                     workers: Optional[int] = 1,
                     chunk_size: Optional[int] = None) -> BernoulliEstimate:
    """Estimate ``P[Π is NOT an ε-embedding for U]``.

    Each trial draws ``U`` from ``instance`` and (by default) a fresh
    sketch from ``family``, then checks the exact embedding condition via
    the singular values of ``ΠU``.  With ``fresh_sketch=False`` a single
    sketch is drawn up front and reused — the deterministic-Π view of
    Yao's principle, appropriate when certifying one concrete matrix.

    ``workers`` distributes the trials over a process pool (``None``/``0``
    = all CPUs).  Results are bit-identical across ``workers`` settings at
    a fixed seed: each trial consumes only its own pre-derived child seed.
    """
    epsilon = check_epsilon(epsilon)
    trials = check_positive_int(trials, "trials")
    if family.n != instance.n:
        raise ValueError(
            f"family ambient dimension ({family.n}) must match instance "
            f"({instance.n})"
        )
    gen = as_generator(rng)
    fixed = None if fresh_sketch \
        else sample_sketch(family, spawn(gen), lazy=True)
    executor = TrialExecutor(workers=workers, chunk_size=chunk_size)
    with trace("failure_estimate", m=family.m, trials=trials):
        distortions = executor.run(
            partial(_distortion_trial, family, instance, fixed), trials, gen
        )
    failures = sum(1 for value in distortions if value > epsilon)
    return BernoulliEstimate(failures, trials)


def distortion_samples(family: SketchFamily, instance: HardInstance,
                       trials: int, rng: RngLike = None,
                       workers: Optional[int] = 1,
                       chunk_size: Optional[int] = None) -> np.ndarray:
    """Sampled distortions (one per trial) — the full failure CDF.

    Shares :func:`failure_estimate`'s trial engine and determinism
    guarantee: the returned array is bit-identical for any ``workers``
    setting at a fixed seed.
    """
    trials = check_positive_int(trials, "trials")
    executor = TrialExecutor(workers=workers, chunk_size=chunk_size)
    with trace("distortion_samples", m=family.m, trials=trials):
        values = executor.run(
            partial(_distortion_trial, family, instance, None), trials, rng
        )
    return np.asarray(values, dtype=float)


@dataclass
class MinimalMResult:
    """Outcome of the minimal-``m`` search.

    Attributes
    ----------
    m_star:
        Smallest probed ``m`` whose measured failure rate is ≤ δ, or
        ``None`` when even ``m_max`` failed.
    evaluations:
        Every probed point as ``(m, estimate)``, in probe order.
    delta:
        The target failure rate.
    """

    m_star: Optional[int]
    evaluations: List[Tuple[int, BernoulliEstimate]] = field(
        default_factory=list
    )
    delta: float = 0.1

    @property
    def found(self) -> bool:
        return self.m_star is not None

    def estimate_at(self, m: int) -> Optional[BernoulliEstimate]:
        """The (pooled) estimate recorded for target dimension ``m``."""
        pooled = None
        for probed_m, est in self.evaluations:
            if probed_m == m:
                pooled = est if pooled is None else pooled.merge(est)
        return pooled


#: Decision rules for :func:`minimal_m` probes.
_DECISIONS = ("point", "confident_pass", "confident_fail")


def minimal_m(family: SketchFamily, instance: HardInstance, epsilon: float,
              delta: float, trials: int = 200, m_min: int = 1,
              m_max: int = 1_000_000, growth: float = 2.0,
              decision: str = "point",
              rng: RngLike = None,
              workers: Optional[int] = 1,
              chunk_size: Optional[int] = None) -> MinimalMResult:
    """Search for the minimal ``m`` with failure rate ≤ ``δ``.

    Exponential search upward from ``m_min`` (factor ``growth``) until a
    passing ``m`` is found, then bisection between the last failing and
    first passing ``m``.  The exponential phase clamps its final probe to
    ``m_max``, so ``m_max`` itself is always probed before the search
    gives up — an instance that only passes at ``m_max`` returns
    ``found=True`` rather than being skipped over by the geometric
    schedule.  The bisection stops once the bracket width
    ``hi - lo`` drops to ``max(1, lo // 20)`` — i.e. it resolves ``m*`` to
    about 5% relative tolerance rather than exactly, since Monte-Carlo
    probe noise at practical ``trials`` swamps finer resolution anyway.
    All probes are recorded for post-hoc inspection.

    ``workers`` parallelizes each probe's trials over a process pool (see
    :func:`failure_estimate`); the probe sequence itself is adaptive and
    stays serial.

    ``decision`` selects how a probe passes:

    * ``"point"`` (default) — point estimate ≤ δ.  Unbiased around the
      transition, noisy at small ``trials``; the scaling experiments use
      this with ``trials`` around ``50/δ``.
    * ``"confident_pass"`` — Wilson upper limit ≤ δ: a conservative
      (upper-bound) estimate of ``m*``; use when an ``m`` that certainly
      works is needed.
    * ``"confident_fail"`` — Wilson lower limit ≤ δ: an optimistic
      (lower-bound) estimate; use when quoting the measured value as an
      empirical *lower* bound on the threshold.
    """
    epsilon = check_epsilon(epsilon)
    delta = check_probability(delta, "delta")
    m_min = check_positive_int(m_min, "m_min")
    m_max = check_positive_int(m_max, "m_max")
    if m_min > m_max:
        raise ValueError(f"m_min ({m_min}) must not exceed m_max ({m_max})")
    if growth <= 1.0:
        raise ValueError(f"growth must exceed 1, got {growth}")
    if decision not in _DECISIONS:
        raise ValueError(
            f"decision must be one of {_DECISIONS}, got {decision!r}"
        )
    gen = as_generator(rng)
    result = MinimalMResult(m_star=None, delta=delta)

    def passes(est: BernoulliEstimate) -> bool:
        if decision == "confident_pass":
            return est.high <= delta
        if decision == "confident_fail":
            return est.low <= delta
        return est.point <= delta

    def probe(m: int, phase: str) -> bool:
        started = time.perf_counter()
        est = failure_estimate(
            family.with_m(m), instance, epsilon, trials, spawn(gen),
            workers=workers, chunk_size=chunk_size,
        )
        result.evaluations.append((m, est))
        ok = passes(est)
        emit_event(
            "probe", m=m, successes=est.successes, trials=est.trials,
            decision=decision, passed=ok, phase=phase,
            elapsed=time.perf_counter() - started,
        )
        return ok

    search_started = time.perf_counter()
    emit_event(
        "minimal_m_start", m_min=m_min, m_max=m_max, growth=growth,
        decision=decision, epsilon=epsilon, delta=delta, trials=trials,
    )
    try:
        # Exponential phase; the final probe is clamped to m_max so the
        # geometric schedule can never skip past it unprobed.
        m = m_min
        last_fail = None
        first_pass = None
        while True:
            if probe(m, "exponential"):
                first_pass = m
                break
            last_fail = m
            if m >= m_max:
                break
            m = min(max(int(np.ceil(m * growth)), m + 1), m_max)
        if first_pass is None:
            return result
        if last_fail is None:
            # Passed already at m_min — it is the minimum within search range.
            result.m_star = first_pass
            return result

        # Bisection phase between last_fail (fails) and first_pass (passes).
        lo, hi = last_fail, first_pass
        while hi - lo > max(1, lo // 20):
            mid = (lo + hi) // 2
            if probe(mid, "bisection"):
                hi = mid
            else:
                lo = mid
        result.m_star = hi
        return result
    finally:
        emit_event(
            "minimal_m_end", m_star=result.m_star, found=result.found,
            probes=len(result.evaluations),
            elapsed=time.perf_counter() - search_started,
        )
