"""Monte-Carlo testing of the subspace-embedding property.

Implements the empirical side of Definition 1: estimate, for a sketch
family and a (hard) instance distribution, the probability that a sampled
sketch fails to ε-embed a sampled subspace — and search for the minimal
target dimension ``m*`` at which the failure rate drops to ``δ``.  The
measured ``m*`` curves are what the experiments compare against the
paper's lower-bound formulas.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hardinstances.dbeta import HardInstance
from ..linalg.distortion import distortion_of_product
from ..observe.counters import add_count, counters
from ..observe.ledger import emit_event
from ..observe.trace import trace
from ..sketch.base import Sketch, SketchFamily, sample_sketch
from ..utils.parallel import (
    ShardSpec,
    TrialExecutor,
    normalize_shard,
    shard_spans,
)
from ..utils.rng import (
    RngLike,
    as_generator,
    seed_fingerprint,
    spawn,
    spawn_seeds,
    spawn_slice,
)
from ..utils.stats import BernoulliEstimate
from ..utils.validation import check_epsilon, check_positive_int, check_probability

__all__ = [
    "ShardPending",
    "failure_estimate",
    "distortion_samples",
    "MinimalMResult",
    "minimal_m",
]


class ShardPending(Exception):
    """A sharded probe stored its trial slice but cannot resolve yet.

    Raised by :func:`failure_estimate` / :func:`distortion_samples` when
    called with ``shard=`` and the probe is absent from the (merged)
    cache: this shard's slice is now on disk as a shard-partial record,
    and the full value exists only after ``python -m repro.cache merge``
    folds all slices.  :func:`minimal_m` catches it internally (returning
    ``pending=True``); the shard driver (:mod:`repro.shard`) catches it
    at the top level and schedules another merge round.
    """


def _distortion_trial(family: SketchFamily, instance: HardInstance,
                      fixed: Optional[Sketch],
                      seed: np.random.SeedSequence) -> float:
    """One Monte-Carlo trial: the distortion of ``ΠU`` for fresh draws.

    Module-level (not a closure) so :class:`TrialExecutor` can pickle it
    for process-pool workers.  All randomness comes from ``seed``, making
    the trial independent of execution order.

    Seed-stream contract (pinned by ``tests/test_core_tester.py``): the
    trial *always* splits its seed into exactly two children,
    ``(sketch_seed, draw_seed) = seed.spawn(2)``, and draws the subspace
    from ``draw_seed`` — also when ``fixed`` is given and ``sketch_seed``
    goes unused.  The fixed-sketch path therefore consumes the same
    per-trial child-seed layout as the fresh path, so toggling
    ``fresh_sketch`` never shifts which stream feeds the instance draws.

    Fresh sketches are drawn ``lazy=True`` so kernel-backed families skip
    scipy matrix assembly entirely; ``basis_image`` then runs on the
    matrix-free kernel (bit-identical to the materialized path).
    """
    sketch_seed, draw_seed = seed.spawn(2)
    sketch = fixed if fixed is not None \
        else sample_sketch(family, sketch_seed, lazy=True)
    draw = instance.sample_draw(draw_seed)
    return distortion_of_product(sketch.basis_image(draw))


def _batched_trial_chunk(family: SketchFamily, instance: HardInstance,
                         seeds: Sequence[np.random.SeedSequence]
                         ) -> List[float]:
    """One batched chunk: ``len(seeds)`` Monte-Carlo trials in one
    vectorized call (see :mod:`repro.sketch.batched`).

    Module-level so :class:`TrialExecutor` can pickle it for process-pool
    workers.  The per-trial seed-stream contract is identical to
    :func:`_distortion_trial` — each trial's seed splits into exactly
    ``(sketch_seed, draw_seed) = seed.spawn(2)`` — so the batch engine
    consumes the same sub-streams the serial loop would.  Families without
    a batched sampler (``sample_trial_batch`` returns ``None``) fall back
    to the serial per-trial arithmetic *inside the chunk*, bit-identical
    to the unbatched path; re-using the already-spawned child seeds is
    safe because a ``SeedSequence`` yields the same stream every time a
    generator is built from it.
    """
    pairs = [seed.spawn(2) for seed in seeds]
    batch_kernel = family.sample_trial_batch([pair[0] for pair in pairs])
    if batch_kernel is None:
        return [
            float(distortion_of_product(
                sample_sketch(family, sketch_seed, lazy=True).basis_image(
                    instance.sample_draw(draw_seed)
                )
            ))
            for sketch_seed, draw_seed in pairs
        ]
    draws = [instance.sample_support(pair[1]) for pair in pairs]
    return [float(value) for value in batch_kernel.distortions(draws)]


def _check_batch(batch: Optional[int], fresh_sketch: bool) -> Optional[int]:
    """Validate the ``batch`` knob shared by the trial-loop entry points."""
    if batch is None:
        return None
    batch = check_positive_int(batch, "batch")
    if batch > 1 and not fresh_sketch:
        raise ValueError(
            "batch > 1 requires fresh_sketch=True: the batched engine "
            "samples one sketch per trial"
        )
    return batch


def _probe_spec(family: SketchFamily, instance: HardInstance,
                fingerprint: Dict[str, Any], trials: int,
                **params: Any) -> Dict[str, Any]:
    """Content-address spec for one probe: *what* is computed, and from
    which stream state — never *how* (``workers``/``chunk_size`` excluded,
    since results are bit-identical across execution strategies)."""
    return {
        "family": family.spec(),
        "instance": instance.spec(),
        "m": family.m,
        "trials": trials,
        "seed": fingerprint,
        **params,
    }


def _shard_spec_of(spec: Dict[str, Any], shard: ShardSpec,
                   span: Tuple[int, int]) -> Dict[str, Any]:
    """The shard-partial content address: the parent spec plus the slice.

    The merge CLI (:func:`repro.cache.merge.merge_stores`) recovers the
    parent key by removing the ``"shard"`` field, so a folded group lands
    on exactly the key a serial run would look up.
    """
    tagged = dict(spec)
    tagged["shard"] = {
        "count": shard.count, "index": shard.index,
        "span": [int(span[0]), int(span[1])],
    }
    return tagged


def _slice_distortions(family: SketchFamily, instance: HardInstance,
                       fixed: Optional[Sketch],
                       seeds: Sequence[np.random.SeedSequence],
                       workers: Optional[int], chunk_size: Optional[int],
                       batch: Optional[int], batched: bool) -> List[float]:
    """Run one shard's contiguous slice of trials over pre-derived seeds.

    Empty slices (more shards than work units) run nothing; the batched
    engine keeps ``chunk_size=batch``, and since :func:`shard_spans`
    aligns slice boundaries to ``batch`` multiples, the chunk
    decomposition — and hence the batched arithmetic — matches the
    serial run's exactly.
    """
    if not seeds:
        return []
    if batched:
        executor = TrialExecutor(workers=workers, chunk_size=batch)
        return [float(v) for v in executor.run_chunked(
            partial(_batched_trial_chunk, family, instance), seeds,
        )]
    executor = TrialExecutor(workers=workers, chunk_size=chunk_size)
    return [float(v) for v in executor.run_seeded(
        partial(_distortion_trial, family, instance, fixed), seeds,
    )]


def _shard_pending(probe: str, spec: Dict[str, Any], shard: ShardSpec,
                   span: Tuple[int, int], computed: bool) -> ShardPending:
    """Mark one probe as awaiting a merge round; returns the exception.

    The ``shard_pending`` counter is how drivers (:mod:`repro.shard`)
    detect that a round left unresolved probes; it is bookkeeping, never
    stored into cached deltas (see ``_BOOKKEEPING_PREFIXES``).
    """
    add_count("shard_pending")
    emit_event(
        "shard_partial" if computed else "shard_pending",
        probe=probe, m=spec.get("m"), trials=spec.get("trials"),
        shard=shard.label, span=[int(span[0]), int(span[1])],
    )
    return ShardPending(
        f"{probe} (m={spec.get('m')}, trials={spec.get('trials')}): shard "
        f"{shard.label} slice {list(span)} stored, awaiting merge"
    )


def failure_estimate(family: SketchFamily, instance: HardInstance,
                     epsilon: float, trials: int,
                     rng: RngLike = None,
                     fresh_sketch: bool = True,
                     workers: Optional[int] = 1,
                     chunk_size: Optional[int] = None,
                     cache: Optional[Any] = None,
                     batch: Optional[int] = None,
                     shard: Optional[Any] = None,
                     sanitized: bool = False) -> BernoulliEstimate:
    """Estimate ``P[Π is NOT an ε-embedding for U]``.

    Each trial draws ``U`` from ``instance`` and (by default) a fresh
    sketch from ``family``, then checks the exact embedding condition via
    the singular values of ``ΠU``.  With ``fresh_sketch=False`` a single
    sketch is drawn up front and reused — the deterministic-Π view of
    Yao's principle, appropriate when certifying one concrete matrix.

    ``workers`` distributes the trials over a process pool (``None``/``0``
    = all CPUs).  Results are bit-identical across ``workers`` settings at
    a fixed seed: each trial consumes only its own pre-derived child seed.

    ``cache`` (a :class:`repro.cache.ProbeCache` or scoped view, duck-typed
    so this module never imports the cache package) reuses results across
    runs: the probe is keyed by family/instance spec, parameters, and the
    RNG's :func:`~repro.utils.rng.seed_fingerprint`, so a hit is by
    construction the value this call would compute.  On a hit the call
    still advances ``rng``'s spawn counter exactly as the computation
    would and merges the stored operation-counter delta, keeping warm
    runs bit-identical to cold and cache-off runs — downstream draws and
    ``count_*`` metrics included.  RNGs without a recorded seed sequence
    are uncacheable and silently bypass the cache.

    ``batch`` switches the trials onto the batched kernel engine
    (:mod:`repro.sketch.batched`): chunks of ``batch`` trials are sampled,
    applied, and SVD-reduced in one vectorized call each.  ``None`` or
    ``1`` keeps the serial per-trial path exactly (so ``batch=1`` is
    bit-identical to the default).  ``batch > 1`` uses the engine's own
    canonical accumulation order — deterministic, and bit-identical across
    serial/parallel and cold/warm-cache runs at a fixed seed, but distinct
    from the serial stream at the ULP level, which is why the batch size
    enters the cache key.  Requires ``fresh_sketch=True``; the chunk
    decomposition is pinned to ``batch`` (``chunk_size`` is ignored).

    ``shard`` (a :class:`~repro.utils.parallel.ShardSpec` or an
    ``(index, count)`` pair) runs this call as one worker of an N-way
    fan-out: when the probe cannot be resolved from ``cache``, only this
    shard's contiguous trial slice is executed — on the **same** child
    seed streams the serial run hands those trials, via
    :func:`~repro.utils.rng.spawn_slice` — and the outcome is stored as a
    shard-partial cache record for ``python -m repro.cache merge`` to
    fold.  The call then raises :class:`ShardPending` (counted as
    ``shard_pending``); once a merged store resolves the probe, the same
    call returns the full estimate bit-identically to a serial run.
    Requires ``cache=`` and a seed-backed ``rng``; see :mod:`repro.shard`
    for the driver.

    ``sanitized=True`` runs the estimate under the determinism sanitizer
    (:func:`repro.sanitize.sanitized_rerun`): the probe executes twice —
    once as configured, once as a serial cache-off replay from the same
    stream state — and any divergence in RNG stream traces or result
    bytes raises :class:`repro.sanitize.DeterminismError`.  Incompatible
    with ``shard=`` (a shard pass is deliberately partial; sanitize the
    merged replay instead).
    """
    if sanitized:
        if shard is not None:
            raise ValueError(
                "sanitized= cannot be combined with shard=: a shard pass "
                "is a deliberately partial execution — sanitize the "
                "merged serial replay instead (see repro.sanitize)"
            )
        from ..sanitize.runtime import sanitized_rerun

        return sanitized_rerun(
            "failure_estimate",
            lambda rng_, workers_, cache_: failure_estimate(
                family, instance, epsilon, trials, rng_,
                fresh_sketch=fresh_sketch, workers=workers_,
                chunk_size=chunk_size, cache=cache_, batch=batch,
            ),
            rng=rng, workers=workers, cache=cache,
        )
    epsilon = check_epsilon(epsilon)
    trials = check_positive_int(trials, "trials")
    batch = _check_batch(batch, fresh_sketch)
    batched = batch is not None and batch > 1
    shard = normalize_shard(shard)
    if family.n != instance.n:
        raise ValueError(
            f"family ambient dimension ({family.n}) must match instance "
            f"({instance.n})"
        )
    gen = as_generator(rng)
    spec = None
    if cache is not None:
        fingerprint = seed_fingerprint(gen)
        if fingerprint is not None:
            params: Dict[str, Any] = dict(
                epsilon=epsilon, fresh_sketch=fresh_sketch,
            )
            if batched:
                # The batched engine owns a different (canonical)
                # accumulation order, so its results must not alias the
                # serial path's; batch=1 delegates to the serial path and
                # shares its entries.
                params["batch"] = batch
            spec = _probe_spec(family, instance, fingerprint, trials,
                               **params)
            hit = cache.get("failure_estimate", spec)
            if hit is not None:
                # Replay the computation's spawn consumption (one child
                # for the fixed sketch, one per trial) and its counter
                # delta, so the parent stream and metrics end up exactly
                # where a cache miss would leave them.
                spawn_seeds(gen, trials + (0 if fresh_sketch else 1))
                counters().merge(hit.counters)
                return BernoulliEstimate(
                    int(hit.value["successes"]), int(hit.value["trials"]),
                    float(hit.value["confidence"]),
                )
    if shard is not None:
        if spec is None:
            raise ValueError(
                "shard= requires cache= and a seed-backed rng: shard "
                "partials are exchanged through the probe cache, keyed by "
                "the seed fingerprint"
            )
        span = shard_spans(trials, shard.count,
                           step=batch if batched else 1)[shard.index]
        shard_spec = _shard_spec_of(spec, shard, span)
        if cache.peek("failure_estimate", shard_spec) is not None:
            # This shard's slice is already on disk (resume after a crash
            # or a later round); only the merge is still outstanding.
            raise _shard_pending("failure_estimate", spec, shard, span,
                                 computed=False)
        lo, hi = span
        if fresh_sketch:
            fixed = None
            before = counters().snapshot()
        elif shard.index == 0:
            # Every shard must sample the fixed sketch (trial seeds start
            # at child 1), but exactly one delta may carry its cost or the
            # folded counters would overcount it (count - 1) times.
            before = counters().snapshot()
            fixed = sample_sketch(family, spawn(gen), lazy=True)
        else:
            fixed = sample_sketch(family, spawn(gen), lazy=True)
            before = counters().snapshot()
        seeds = spawn_slice(gen, lo, hi, total=trials)
        distortions = _slice_distortions(
            family, instance, fixed, seeds, workers, chunk_size,
            batch, batched,
        )
        cache.put(
            "failure_estimate", shard_spec,
            {
                "successes": sum(1 for v in distortions if v > epsilon),
                "trials": hi - lo,
                "confidence": BernoulliEstimate(0, 1).confidence,
            },
            counters().diff(before),
        )
        raise _shard_pending("failure_estimate", spec, shard, span,
                             computed=True)
    before = counters().snapshot() if spec is not None else {}
    if batched:
        executor = TrialExecutor(workers=workers, chunk_size=batch)
        with trace("failure_estimate", m=family.m, trials=trials,
                   batch=batch):
            distortions = executor.run_chunked(
                partial(_batched_trial_chunk, family, instance),
                spawn_seeds(gen, trials),
            )
    else:
        fixed = None if fresh_sketch \
            else sample_sketch(family, spawn(gen), lazy=True)
        executor = TrialExecutor(workers=workers, chunk_size=chunk_size)
        with trace("failure_estimate", m=family.m, trials=trials):
            distortions = executor.run(
                partial(_distortion_trial, family, instance, fixed),
                trials, gen,
            )
    failures = sum(1 for value in distortions if value > epsilon)
    estimate = BernoulliEstimate(failures, trials)
    if spec is not None:
        cache.put(
            "failure_estimate", spec,
            {
                "successes": estimate.successes,
                "trials": estimate.trials,
                "confidence": estimate.confidence,
            },
            counters().diff(before),
        )
    return estimate


def distortion_samples(family: SketchFamily, instance: HardInstance,
                       trials: int, rng: RngLike = None,
                       workers: Optional[int] = 1,
                       chunk_size: Optional[int] = None,
                       cache: Optional[Any] = None,
                       batch: Optional[int] = None,
                       shard: Optional[Any] = None,
                       sanitized: bool = False) -> np.ndarray:
    """Sampled distortions (one per trial) — the full failure CDF.

    Shares :func:`failure_estimate`'s trial engine and determinism
    guarantee: the returned array is bit-identical for any ``workers``
    setting at a fixed seed — and, with ``cache`` given, for cold, warm,
    and cache-off runs (the cached array is stored exactly and the RNG
    spawn counter replayed on hits; see :func:`failure_estimate`).
    ``batch`` selects the batched kernel engine exactly as in
    :func:`failure_estimate` (``None``/``1`` = serial path, ``> 1`` =
    vectorized chunks with the batch size in the cache key).  ``shard``
    runs one slice of an N-way fan-out and raises :class:`ShardPending`
    until a merged cache resolves the probe, exactly as in
    :func:`failure_estimate` (the folded record concatenates slice
    values in span order — the serial sample order).  ``sanitized``
    re-executes under the determinism sanitizer exactly as in
    :func:`failure_estimate` (incompatible with ``shard=``).
    """
    if sanitized:
        if shard is not None:
            raise ValueError(
                "sanitized= cannot be combined with shard=: a shard pass "
                "is a deliberately partial execution — sanitize the "
                "merged serial replay instead (see repro.sanitize)"
            )
        from ..sanitize.runtime import sanitized_rerun

        return sanitized_rerun(
            "distortion_samples",
            lambda rng_, workers_, cache_: distortion_samples(
                family, instance, trials, rng_, workers=workers_,
                chunk_size=chunk_size, cache=cache_, batch=batch,
            ),
            rng=rng, workers=workers, cache=cache,
        )
    trials = check_positive_int(trials, "trials")
    batch = _check_batch(batch, fresh_sketch=True)
    batched = batch is not None and batch > 1
    shard = normalize_shard(shard)
    gen = as_generator(rng)
    spec = None
    if cache is not None:
        fingerprint = seed_fingerprint(gen)
        if fingerprint is not None:
            params = {"batch": batch} if batched else {}
            spec = _probe_spec(family, instance, fingerprint, trials,
                               **params)
            hit = cache.get("distortion_samples", spec)
            if hit is not None:
                spawn_seeds(gen, trials)
                counters().merge(hit.counters)
                return np.asarray(hit.value["values"], dtype=float)
    if shard is not None:
        if spec is None:
            raise ValueError(
                "shard= requires cache= and a seed-backed rng: shard "
                "partials are exchanged through the probe cache, keyed by "
                "the seed fingerprint"
            )
        span = shard_spans(trials, shard.count,
                           step=batch if batched else 1)[shard.index]
        shard_spec = _shard_spec_of(spec, shard, span)
        if cache.peek("distortion_samples", shard_spec) is not None:
            raise _shard_pending("distortion_samples", spec, shard, span,
                                 computed=False)
        lo, hi = span
        before = counters().snapshot()
        seeds = spawn_slice(gen, lo, hi, total=trials)
        values = _slice_distortions(
            family, instance, None, seeds, workers, chunk_size,
            batch, batched,
        )
        cache.put(
            "distortion_samples", shard_spec,
            {"values": values},
            counters().diff(before),
        )
        raise _shard_pending("distortion_samples", spec, shard, span,
                             computed=True)
    before = counters().snapshot() if spec is not None else {}
    if batched:
        executor = TrialExecutor(workers=workers, chunk_size=batch)
        with trace("distortion_samples", m=family.m, trials=trials,
                   batch=batch):
            values = executor.run_chunked(
                partial(_batched_trial_chunk, family, instance),
                spawn_seeds(gen, trials),
            )
    else:
        executor = TrialExecutor(workers=workers, chunk_size=chunk_size)
        with trace("distortion_samples", m=family.m, trials=trials):
            values = executor.run(
                partial(_distortion_trial, family, instance, None),
                trials, gen,
            )
    samples = np.asarray(values, dtype=float)
    if spec is not None:
        cache.put(
            "distortion_samples", spec,
            {"values": [float(value) for value in samples]},
            counters().diff(before),
        )
    return samples


@dataclass
class MinimalMResult:
    """Outcome of the minimal-``m`` search.

    Attributes
    ----------
    m_star:
        Smallest probed ``m`` whose measured failure rate is ≤ δ, or
        ``None`` when even ``m_max`` failed.
    evaluations:
        Every probed point as ``(m, estimate)``, in probe order.
    delta:
        The target failure rate.
    pending:
        ``True`` when a sharded search (``shard=``) stopped at a probe
        whose trials are not yet resolvable from the merged cache — the
        shard computed and stored its slice of that probe; ``m_star`` is
        meaningless until a merge round folds the partials and the search
        is replayed.  Always ``False`` for unsharded searches.
    """

    m_star: Optional[int]
    evaluations: List[Tuple[int, BernoulliEstimate]] = field(
        default_factory=list
    )
    delta: float = 0.1
    pending: bool = False

    @property
    def found(self) -> bool:
        return self.m_star is not None

    def estimate_at(self, m: int) -> Optional[BernoulliEstimate]:
        """The (pooled) estimate recorded for target dimension ``m``."""
        pooled = None
        for probed_m, est in self.evaluations:
            if probed_m == m:
                pooled = est if pooled is None else pooled.merge(est)
        return pooled


#: Decision rules for :func:`minimal_m` probes.
_DECISIONS = ("point", "confident_pass", "confident_fail")


def minimal_m(family: SketchFamily, instance: HardInstance, epsilon: float,
              delta: float, trials: int = 200, m_min: int = 1,
              m_max: int = 1_000_000, growth: float = 2.0,
              decision: str = "point",
              rng: RngLike = None,
              workers: Optional[int] = 1,
              chunk_size: Optional[int] = None,
              cache: Optional[Any] = None,
              batch: Optional[int] = None,
              shard: Optional[Any] = None,
              sanitized: bool = False) -> MinimalMResult:
    """Search for the minimal ``m`` with failure rate ≤ ``δ``.

    Exponential search upward from ``m_min`` (factor ``growth``) until a
    passing ``m`` is found, then bisection between the last failing and
    first passing ``m``.  The exponential phase clamps its final probe to
    ``m_max``, so ``m_max`` itself is always probed before the search
    gives up — an instance that only passes at ``m_max`` returns
    ``found=True`` rather than being skipped over by the geometric
    schedule.  The bisection stops once the bracket width
    ``hi - lo`` drops to ``max(1, lo // 20)`` — i.e. it resolves ``m*`` to
    about 5% relative tolerance rather than exactly, since Monte-Carlo
    probe noise at practical ``trials`` swamps finer resolution anyway.
    All probes are recorded for post-hoc inspection.

    Block-structured families round a requested dimension up —
    ``family.with_m(m).m`` can exceed ``m`` (OSNAP's block variant rounds
    to a multiple of ``s``; SRHT-style families to a multiple of the block
    order).  The search therefore records the **effective** dimension
    everywhere (``evaluations``, ``m_star``, ``probe`` events), probes
    each effective dimension at most once (distinct requested values that
    alias to one sketch reuse the recorded estimate without consuming
    trials or RNG state), and clamps the schedule so no probe's effective
    dimension exceeds ``m_max``.  When even ``m_min`` rounds past
    ``m_max`` the search returns ``found=False`` without probing.

    ``workers`` parallelizes each probe's trials over a process pool (see
    :func:`failure_estimate`); the probe sequence itself is adaptive and
    stays serial.  ``batch`` switches each probe onto the batched kernel
    engine, forwarded to :func:`failure_estimate` (and into the probe
    cache key) only when set.

    ``decision`` selects how a probe passes:

    * ``"point"`` (default) — point estimate ≤ δ.  Unbiased around the
      transition, noisy at small ``trials``; the scaling experiments use
      this with ``trials`` around ``50/δ``.
    * ``"confident_pass"`` — Wilson upper limit ≤ δ: a conservative
      (upper-bound) estimate of ``m*``; use when an ``m`` that certainly
      works is needed.
    * ``"confident_fail"`` — Wilson lower limit ≤ δ: an optimistic
      (lower-bound) estimate; use when quoting the measured value as an
      empirical *lower* bound on the threshold.

    ``cache`` threads a probe cache (see :func:`failure_estimate`) into
    every probe, scoped by ``search="minimal_m"`` and the ``decision``
    rule — the rule shapes *which* ``m`` values get probed, so probes
    under different rules must not alias.  Warm-starting the bracket
    falls out of content addressing: the adaptive schedule is a
    deterministic function of probe outcomes, so a warm re-run replays
    the exact cold-run probe sequence against the cache and re-derives
    the bracket (and ``m_star``) with zero new trials executed.

    ``shard`` runs the search as one worker of an N-way fan-out (see
    :func:`failure_estimate` and :mod:`repro.shard`): the adaptive probe
    sequence is replayed against the merged cache; at the first probe the
    cache cannot resolve, this shard computes and stores its trial slice
    and the search returns early with ``pending=True``.  Because the
    schedule is a deterministic function of full probe outcomes, each
    shard advances one probe per merge round and the final replay against
    the fully merged store reproduces the serial search bit for bit —
    requires ``cache=`` and a seed-backed ``rng``.

    ``sanitized`` re-executes the whole search under the determinism
    sanitizer exactly as in :func:`failure_estimate` (incompatible with
    ``shard=``): the adaptive probe schedule, being a deterministic
    function of probe outcomes, must replay identically serial and
    cache-off.
    """
    if sanitized:
        if shard is not None:
            raise ValueError(
                "sanitized= cannot be combined with shard=: a shard pass "
                "is a deliberately partial execution — sanitize the "
                "merged serial replay instead (see repro.sanitize)"
            )
        from ..sanitize.runtime import sanitized_rerun

        return sanitized_rerun(
            "minimal_m",
            lambda rng_, workers_, cache_: minimal_m(
                family, instance, epsilon, delta, trials=trials,
                m_min=m_min, m_max=m_max, growth=growth,
                decision=decision, rng=rng_, workers=workers_,
                chunk_size=chunk_size, cache=cache_, batch=batch,
            ),
            rng=rng, workers=workers, cache=cache,
        )
    epsilon = check_epsilon(epsilon)
    delta = check_probability(delta, "delta")
    m_min = check_positive_int(m_min, "m_min")
    m_max = check_positive_int(m_max, "m_max")
    if m_min > m_max:
        raise ValueError(f"m_min ({m_min}) must not exceed m_max ({m_max})")
    if growth <= 1.0:
        raise ValueError(f"growth must exceed 1, got {growth}")
    if decision not in _DECISIONS:
        raise ValueError(
            f"decision must be one of {_DECISIONS}, got {decision!r}"
        )
    batch = _check_batch(batch, fresh_sketch=True)
    shard = normalize_shard(shard)
    if shard is not None and cache is None:
        raise ValueError(
            "shard= requires cache=: a sharded search exchanges probe "
            "partials through the probe cache"
        )
    gen = as_generator(rng)
    result = MinimalMResult(m_star=None, delta=delta)
    probe_cache = None if cache is None \
        else cache.scoped(search="minimal_m", decision=decision)
    # Only forward `batch`/`shard` when set: probes must keep calling any
    # monkeypatched/stubbed failure_estimate with its historical signature.
    probe_kwargs: Dict[str, Any] = {} if batch is None else {"batch": batch}
    if shard is not None:
        probe_kwargs["shard"] = shard

    def passes(est: BernoulliEstimate) -> bool:
        if decision == "confident_pass":
            return est.high <= delta
        if decision == "confident_fail":
            return est.low <= delta
        return est.point <= delta

    def effective(m: int) -> int:
        """The dimension actually probed: ``with_m`` may round up."""
        return family.with_m(m).m

    probed: Dict[int, BernoulliEstimate] = {}

    def probe(m: int, phase: str) -> Optional[bool]:
        started = time.perf_counter()
        fam = family.with_m(m)
        known = probed.get(fam.m)
        if known is not None:
            # Aliased probe: this requested m rounds to an effective
            # dimension already measured.  Reuse the estimate — no trials,
            # no RNG consumption — and record only a ledger event.
            ok = passes(known)
            emit_event(
                "probe", m=fam.m, requested=m, successes=known.successes,
                trials=known.trials, decision=decision, passed=ok,
                phase=phase, aliased=True,
                elapsed=time.perf_counter() - started,
            )
            return ok
        try:
            est = failure_estimate(
                fam, instance, epsilon, trials, spawn(gen),
                workers=workers, chunk_size=chunk_size, cache=probe_cache,
                **probe_kwargs,
            )
        except ShardPending:
            # Sharded search: this probe is not resolvable yet — our
            # slice is stored, the search stops until the next merge.
            result.pending = True
            return None
        probed[fam.m] = est
        result.evaluations.append((fam.m, est))
        ok = passes(est)
        emit_event(
            "probe", m=fam.m, requested=m, successes=est.successes,
            trials=est.trials, decision=decision, passed=ok, phase=phase,
            aliased=False, elapsed=time.perf_counter() - started,
        )
        return ok

    # Clamp the schedule so rounding can never push a probe's effective
    # dimension past m_max: m_cap is the largest requested value whose
    # rounded dimension still fits (with_m is monotone nondecreasing).
    if effective(m_min) > m_max:
        emit_event(
            "minimal_m_start", m_min=m_min, m_max=m_max, growth=growth,
            decision=decision, epsilon=epsilon, delta=delta, trials=trials,
        )
        emit_event(
            "minimal_m_end", m_star=None, found=False, probes=0, elapsed=0.0,
        )
        return result
    lo_cap, hi_cap = m_min, m_max
    while lo_cap < hi_cap:
        mid_cap = (lo_cap + hi_cap + 1) // 2
        if effective(mid_cap) <= m_max:
            lo_cap = mid_cap
        else:
            hi_cap = mid_cap - 1
    m_cap = lo_cap

    search_started = time.perf_counter()
    emit_event(
        "minimal_m_start", m_min=m_min, m_max=m_max, growth=growth,
        decision=decision, epsilon=epsilon, delta=delta, trials=trials,
    )
    try:
        # Exponential phase; the final probe is clamped to m_cap so the
        # geometric schedule can never skip past it unprobed, nor round
        # past m_max.
        m = m_min
        last_fail = None
        first_pass = None
        while True:
            verdict = probe(m, "exponential")
            if verdict is None:
                return result
            if verdict:
                first_pass = m
                break
            last_fail = m
            if m >= m_cap:
                break
            m = min(max(int(np.ceil(m * growth)), m + 1), m_cap)
        if first_pass is None:
            return result
        if last_fail is None:
            # Passed already at m_min — it is the minimum within search range.
            result.m_star = effective(first_pass)
            return result

        # Bisection phase between last_fail (fails) and first_pass (passes).
        lo, hi = last_fail, first_pass
        while hi - lo > max(1, lo // 20):
            mid = (lo + hi) // 2
            verdict = probe(mid, "bisection")
            if verdict is None:
                return result
            if verdict:
                hi = mid
            else:
                lo = mid
        result.m_star = effective(hi)
        return result
    finally:
        emit_event(
            "minimal_m_end", m_star=result.m_star, found=result.found,
            probes=len(result.evaluations),
            elapsed=time.perf_counter() - search_started,
        )
