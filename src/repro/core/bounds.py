"""Closed-form lower and upper bounds on the OSE target dimension.

Collects, as plain functions, every bound discussed in the paper:

Lower bounds (what any OSE must satisfy):

* :func:`theorem8_lower_bound` — this paper, ``s = 1``:
  ``m = Ω(d²/(ε²δ))``.
* :func:`theorem9_lower_bound` — this paper, ``s ≤ 1/(9ε)`` + abundance:
  ``m > d²``.
* :func:`theorem18_lower_bound` — this paper, ``s ≤ 1/(9ε)``:
  ``m = Ω(c₀ log⁻⁴(1/ε) ε^{K₁δ} d²)``.
* :func:`theorem20_lower_bound` — this paper, trade-off in ``s``:
  ``m = Ω(log⁻⁴(s) s^{-K₁δ} d²)``.
* :func:`nn13b_lower_bound` — Nelson–Nguyễn 2013, ``s = 1``: ``m = Ω(d²)``.
* :func:`nn14_sparse_lower_bound` — Nelson–Nguyễn 2014, ``s = O(1/ε)``:
  ``m = Ω(ε²d²)``.
* :func:`dense_lower_bound` — Nelson–Nguyễn 2014, unrestricted ``s``:
  ``m = Ω((d + log(1/δ))/ε²)``.

Upper bounds (constructions): re-exported from the sketch families.

The asymptotic constants are all normalized to 1 by default; the functions
exist to compare *shapes* (who dominates where) and to parameterize the
experiments, not to certify finite-``n`` constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..utils.validation import (
    check_epsilon,
    check_positive_int,
    check_probability,
)

__all__ = [
    "theorem8_lower_bound",
    "theorem8_n",
    "theorem9_lower_bound",
    "theorem18_lower_bound",
    "theorem18_n",
    "theorem20_lower_bound",
    "nn13b_lower_bound",
    "nn14_sparse_lower_bound",
    "dense_lower_bound",
    "max_sparsity_for_quadratic",
    "delta_prime",
    "BoundComparison",
    "compare_lower_bounds",
    "quadratic_regime_threshold",
]


def theorem8_lower_bound(d: int, epsilon: float, delta: float,
                         constant: float = 1.0) -> float:
    """Theorem 8: any ``s = 1`` OSE needs ``m ≥ c · d²/(ε²δ)``."""
    d = check_positive_int(d, "d")
    epsilon = check_epsilon(epsilon, upper=1.0 / 8.0)
    delta = check_probability(delta, "delta")
    return constant * d * d / (epsilon**2 * delta)


def theorem8_n(d: int, epsilon: float, delta: float,
               constant: float = 4.0) -> int:
    """The ambient dimension ``n ≥ K d²/(ε²δ)`` Theorem 8 requires."""
    d = check_positive_int(d, "d")
    epsilon = check_epsilon(epsilon, upper=1.0 / 8.0)
    delta = check_probability(delta, "delta")
    return max(d, math.ceil(constant * d * d / (epsilon**2 * delta)))


def theorem9_lower_bound(d: int) -> float:
    """Theorem 9: under the abundance assumption, ``m > d²``."""
    d = check_positive_int(d, "d")
    return float(d * d)


def delta_prime(epsilon: float) -> float:
    """The paper's ``δ' = log log(1/ε^72) / log(1/ε)`` (Section 5)."""
    epsilon = check_epsilon(epsilon)
    return math.log(math.log(1.0 / epsilon**72)) / math.log(1.0 / epsilon)


def theorem18_lower_bound(d: int, epsilon: float, delta: float,
                          k1: float = 1.0, c0: float = 1.0) -> float:
    """Theorem 18: ``m ≥ c₀ log⁻⁴(1/ε) ε^{K₁δ} d²`` for ``s ≤ 1/(9ε)``.

    With ``K₁δ`` small this is nearly ``d²`` — the paper's almost-quadratic
    improvement in the ε-dependence over NN14's ``ε²d²``.
    """
    d = check_positive_int(d, "d")
    epsilon = check_epsilon(epsilon)
    delta = check_probability(delta, "delta")
    log_term = math.log(1.0 / epsilon)
    if log_term <= 0:
        return 0.0
    return c0 * epsilon ** (k1 * delta) * d * d / log_term**4


def theorem18_n(d: int, epsilon: float, delta: float,
                constant: float = 4.0) -> int:
    """The ambient dimension ``n ≥ K₀ d²/(ε²δ)`` Theorem 18 requires."""
    d = check_positive_int(d, "d")
    epsilon = check_epsilon(epsilon)
    delta = check_probability(delta, "delta")
    return max(d, math.ceil(constant * d * d / (epsilon**2 * delta)))


def theorem20_lower_bound(d: int, s: int, delta: float,
                          k1: float = 1.0) -> float:
    """Theorem 20 trade-off: ``m = Ω(log⁻⁴(s) · s^{-K₁δ} · d²)``."""
    d = check_positive_int(d, "d")
    s = check_positive_int(s, "s")
    delta = check_probability(delta, "delta")
    log_term = max(math.log(s), 1.0)
    return s ** (-k1 * delta) * d * d / log_term**4


def nn13b_lower_bound(d: int, constant: float = 1.0) -> float:
    """Nelson–Nguyễn 2013 (STOC): ``s = 1`` needs ``m = Ω(d²)``."""
    d = check_positive_int(d, "d")
    return constant * d * d


def nn14_sparse_lower_bound(d: int, epsilon: float,
                            constant: float = 1.0) -> float:
    """Nelson–Nguyễn 2014 (ICALP): ``s ≤ α/ε`` needs ``m = Ω(ε²d²)``."""
    d = check_positive_int(d, "d")
    epsilon = check_epsilon(epsilon)
    return constant * epsilon**2 * d * d


def dense_lower_bound(d: int, epsilon: float, delta: float,
                      constant: float = 1.0) -> float:
    """General OSE bound ``m = Ω((d + log(1/δ))/ε²)`` (no sparsity limit)."""
    d = check_positive_int(d, "d")
    epsilon = check_epsilon(epsilon)
    delta = check_probability(delta, "delta")
    return constant * (d + math.log(1.0 / delta)) / epsilon**2


def max_sparsity_for_quadratic(epsilon: float) -> int:
    """The paper's sparsity constraint ``s ≤ 1/(9ε)`` (floor, ≥ 1)."""
    epsilon = check_epsilon(epsilon)
    return max(1, int(math.floor(1.0 / (9.0 * epsilon))))


def quadratic_regime_threshold(epsilon: float, delta: float,
                               k1: float = 1.0) -> Dict[str, float]:
    """Minimum ``d`` at which each quadratic bound beats ``d/ε²``.

    The ``Ω(ε²d²)`` bound of NN14 beats the dense ``d/ε²`` floor only when
    ``d ≥ 1/ε⁴``; the paper's ``ε^{K₁δ}d²`` bound already at
    ``d ≥ 1/ε^{2+K₁δ}`` (log factors dropped).  Returns both thresholds.
    """
    epsilon = check_epsilon(epsilon)
    delta = check_probability(delta, "delta")
    return {
        "nn14": epsilon**-4.0,
        "theorem18": epsilon ** -(2.0 + k1 * delta),
    }


@dataclass(frozen=True)
class BoundComparison:
    """All lower bounds evaluated at one parameter point.

    ``bounds`` maps bound name → value; ``dominant`` is the largest
    applicable one.
    """

    d: int
    epsilon: float
    delta: float
    s: int
    bounds: Dict[str, float]
    dominant: str

    def __str__(self) -> str:
        rows = ", ".join(f"{k}={v:.3g}" for k, v in self.bounds.items())
        return (
            f"d={self.d}, eps={self.epsilon:g}, delta={self.delta:g}, "
            f"s={self.s}: {rows} -> {self.dominant}"
        )


def compare_lower_bounds(d: int, epsilon: float, delta: float,
                         s: int, k1: float = 1.0) -> BoundComparison:
    """Evaluate every applicable lower bound at ``(d, ε, δ, s)``.

    A bound is applicable when its sparsity precondition holds
    (``s = 1`` for Theorem 8 / NN13b; ``s ≤ 1/(9ε)`` for Theorems 18/20
    and NN14; always for the dense bound).  Used by the E12 regime map.
    """
    d = check_positive_int(d, "d")
    s = check_positive_int(s, "s")
    bounds: Dict[str, float] = {
        "dense": dense_lower_bound(d, epsilon, delta),
    }
    if s == 1:
        # NN13b's Omega(d^2) needs no epsilon precondition; Theorem 8
        # additionally requires eps < 1/8.
        bounds["nn13b"] = nn13b_lower_bound(d)
        if epsilon < 1.0 / 8.0:
            bounds["theorem8"] = theorem8_lower_bound(d, epsilon, delta)
    # Unclamped applicability test: the sparse theorems require
    # s <= 1/(9 eps) exactly (at eps >= 1/9 no s qualifies).
    if s <= 1.0 / (9.0 * epsilon):
        bounds["nn14"] = nn14_sparse_lower_bound(d, epsilon)
        bounds["theorem18"] = theorem18_lower_bound(d, epsilon, delta, k1=k1)
        bounds["theorem20"] = theorem20_lower_bound(d, s, delta, k1=k1)
    dominant = max(bounds, key=bounds.get)
    return BoundComparison(
        d=d, epsilon=epsilon, delta=delta, s=s,
        bounds=bounds, dominant=dominant,
    )
