"""Executable proof replays.

The lower-bound proofs are chains of measurable claims about any matrix
``Π`` that wants to be an ``(ε, δ)``-subspace-embedding.  This module
replays those chains on a *concrete* ``Π``, recording for every step the
quantity the proof constrains, the constraint, and whether ``Π`` honors
it — ending with the proof's dichotomy: either some step already refutes
``Π``, or ``Π`` must pay the theorem's row bound.

* :func:`replay_theorem8` — the Section 3 chain:
  Lemma 6 (entry values ``1 ± ε``) → Lemma 7 (no bucket holds two chosen
  dimensions) → birthday count (isolation needs
  ``m = Ω(d²/(ε²δ))`` buckets).
* :func:`replay_theorem9` — the Section 4 chain: abundance → good-column
  fraction ≥ 1/3 → Algorithm 1 finds a large-inner-product pair w.p.
  ``Ω(min{d²/m, 1})`` → Lemma 4 escape ≥ 1/4 → ``m > d²``.

Each trace is also a diagnostic tool: for a ``Π`` that *is* a valid
embedding, the trace shows which structural resource (row count) it paid
to satisfy every step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..hardinstances.dbeta import DBeta
from ..linalg.gram import max_column_sparsity
from ..utils.rng import RngLike, as_generator, spawn
from ..utils.stats import BernoulliEstimate
from ..utils.validation import check_epsilon, check_positive_int, check_probability
from .certify import witness_from_algorithm1
from .collisions import birthday_lower_bound_m, has_bucket_collision
from .heavy import average_heavy_count, good_columns
from .tester import failure_estimate

__all__ = ["ProofStep", "ProofTrace", "replay_theorem8", "replay_theorem9"]

MatrixLike = Union[np.ndarray, sp.spmatrix]


@dataclass(frozen=True)
class ProofStep:
    """One measurable claim in a proof chain.

    Attributes
    ----------
    name:
        Short identifier (e.g. ``"lemma6"``).
    claim:
        The constraint the proof imposes, in words.
    measured:
        The measured quantity.
    requirement:
        The numerical constraint the measured value is compared against.
    satisfied:
        Whether ``Π`` honors the constraint (i.e. is *consistent* with
        being an embedding at this step).
    detail:
        Free-form context.
    """

    name: str
    claim: str
    measured: float
    requirement: float
    satisfied: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "ok" if self.satisfied else "VIOLATED"
        return (
            f"[{mark:>8}] {self.name}: {self.claim} "
            f"(measured {self.measured:.4g}, requirement "
            f"{self.requirement:.4g}) {self.detail}"
        )


@dataclass
class ProofTrace:
    """The full replay of one theorem's chain on a concrete ``Π``.

    ``refuted`` is True when some step (or the final row-count
    comparison) shows ``Π`` cannot be an ``(ε, δ)``-embedding for the
    hard instance.
    """

    theorem: str
    m: int
    steps: List[ProofStep] = field(default_factory=list)
    required_m: float = 0.0
    refuted: bool = False
    empirical_failure: Optional[BernoulliEstimate] = None

    def add(self, step: ProofStep) -> None:
        """Append a step to the chain."""
        self.steps.append(step)

    @property
    def first_violation(self) -> Optional[ProofStep]:
        for step in self.steps:
            if not step.satisfied:
                return step
        return None

    def render(self) -> str:
        """Render the trace as a plain-text report."""
        lines = [f"== proof replay: {self.theorem} (Pi has m={self.m} rows) =="]
        lines.extend(str(step) for step in self.steps)
        lines.append(
            f"row requirement from the surviving chain: "
            f"m >= {self.required_m:.4g}"
        )
        if self.empirical_failure is not None:
            lines.append(
                f"empirical failure probability: {self.empirical_failure}"
            )
        verdict = (
            "REFUTED: Pi is not an (eps, delta)-embedding for the hard "
            "instance" if self.refuted else
            "consistent: Pi pays the theorem's row bound"
        )
        lines.append(verdict)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _entry_fraction_outside(pi: MatrixLike, epsilon: float) -> float:
    """Fraction of nonzero entries with absolute value outside
    ``[1-ε, 1+ε]`` — the quantity Lemma 6 bounds by ``2δ/d``."""
    if sp.issparse(pi):
        data = np.abs(pi.tocsc().data)
        data = data[data != 0]
    else:
        dense = np.asarray(pi, dtype=float)
        data = np.abs(dense[dense != 0])
    if data.size == 0:
        return 1.0
    outside = np.sum((data < 1.0 - epsilon) | (data > 1.0 + epsilon))
    return float(outside) / data.size


def replay_theorem8(pi: MatrixLike, d: int, epsilon: float, delta: float,
                    trials: int = 60, rng: RngLike = None) -> ProofTrace:
    """Replay the Theorem 8 chain on a concrete ``s = 1`` matrix ``Π``.

    The instance dimensions follow the proof: ``D_1`` drives Lemma 6,
    ``D_{8ε}`` drives Lemma 7 and the birthday count.
    """
    d = check_positive_int(d, "d")
    epsilon = check_epsilon(epsilon, upper=1.0 / 8.0)
    delta = check_probability(delta, "delta")
    if delta >= 1.0 / 8.0:
        raise ValueError(
            f"Theorem 8 requires delta < 1/8, got {delta} (the Lemma 7 "
            f"budget 2*delta/(1-4*delta) degenerates above it)"
        )
    trials = check_positive_int(trials, "trials")
    gen = as_generator(rng)
    n = pi.shape[1]
    m = pi.shape[0]
    trace = ProofTrace(theorem="Theorem 8 (s = 1)", m=m)

    sparsity = max_column_sparsity(pi)
    trace.add(ProofStep(
        name="model",
        claim="column sparsity s = 1",
        measured=float(sparsity),
        requirement=1.0,
        satisfied=sparsity <= 1,
    ))

    # Step 1 — Lemma 6: nonzero entries have absolute value 1 ± eps.
    sigma = _entry_fraction_outside(pi, epsilon)
    lemma6_budget = 2.0 * delta / d
    trace.add(ProofStep(
        name="lemma6",
        claim="fraction of nonzero entries outside [1-eps, 1+eps] is at "
              "most 2*delta/d",
        measured=sigma,
        requirement=lemma6_budget,
        satisfied=sigma <= lemma6_budget,
    ))

    # Step 2 — Lemma 7: on D_{8eps}, no bucket holds two chosen columns.
    reps = max(1, round(1.0 / (8.0 * epsilon)))
    q = reps * d
    instance = DBeta(n=n, d=d, reps=reps)
    collisions = 0
    for _ in range(trials):
        draw = instance.sample_draw(spawn(gen))
        if has_bucket_collision(pi, draw.rows, 1.0 - epsilon,
                                1.0 + epsilon):
            collisions += 1
    collision_rate = collisions / trials
    lemma7_budget = 2.0 * delta / max(1e-9, 1.0 - 4.0 * delta)
    trace.add(ProofStep(
        name="lemma7",
        claim="probability that two chosen dimensions share a bucket is "
              "at most 2*delta/(1-4*delta)",
        measured=collision_rate,
        requirement=lemma7_budget,
        satisfied=collision_rate <= lemma7_budget,
        detail=f"(q = {q} chosen columns, {trials} draws)",
    ))

    # Step 3 — birthday: isolating q throws needs the quadratic m.
    required = birthday_lower_bound_m(q, min(0.9, lemma7_budget))
    trace.required_m = required
    trace.add(ProofStep(
        name="birthday",
        claim="isolating q = d/(8 eps) throws at the Lemma 7 rate "
              "requires m >= q(q-1)/(2 ln(1/(1-p)))",
        measured=float(m),
        requirement=required,
        satisfied=m >= required,
    ))

    # Ground truth for the verdict.
    failure = failure_estimate(
        _FixedFamily(pi), DBeta(n=n, d=d, reps=reps), epsilon,
        trials=trials, rng=spawn(gen), fresh_sketch=False,
    )
    trace.empirical_failure = failure
    # The verdict is the measured failure; the steps explain it.
    trace.refuted = failure.point > delta
    return trace


def replay_theorem9(pi: MatrixLike, d: int, epsilon: float, delta: float,
                    trials: int = 40, rng: RngLike = None) -> ProofTrace:
    """Replay the Theorem 9 chain (abundance assumption included)."""
    d = check_positive_int(d, "d")
    epsilon = check_epsilon(epsilon, upper=1.0 / 9.0)
    delta = check_probability(delta, "delta")
    trials = check_positive_int(trials, "trials")
    gen = as_generator(rng)
    n = pi.shape[1]
    m = pi.shape[0]
    trace = ProofTrace(theorem="Theorem 9 (s <= 1/(9 eps))", m=m)

    # Step 0 — model: column sparsity within the constraint.
    sparsity = max_column_sparsity(pi)
    s_max = 1.0 / (9.0 * epsilon)
    trace.add(ProofStep(
        name="model",
        claim="column sparsity at most 1/(9 eps)",
        measured=float(sparsity),
        requirement=s_max,
        satisfied=sparsity <= s_max,
    ))

    # Step 1 — abundance: average sqrt(8 eps)-heavy entries >= 1/(12 eps).
    theta = math.sqrt(8.0 * epsilon)
    abundance = average_heavy_count(pi, theta)
    abundance_floor = 1.0 / (12.0 * epsilon)
    trace.add(ProofStep(
        name="abundance",
        claim="average number of sqrt(8 eps)-heavy entries per column is "
              "at least 1/(12 eps)",
        measured=abundance,
        requirement=abundance_floor,
        satisfied=abundance >= abundance_floor,
        detail="(Theorem 9's assumption (ii); Theorem 18 removes it)",
    ))

    # Step 2 — good columns: at least a 1/3 fraction.
    min_heavy = max(1, int(1.0 / (16.0 * epsilon)))
    good = good_columns(pi, epsilon, theta, min_heavy)
    good_fraction = good.size / n
    trace.add(ProofStep(
        name="good_columns",
        claim="at least 1/3 of the columns are good (heavy-rich, norm "
              "1 ± eps)",
        measured=good_fraction,
        requirement=1.0 / 3.0,
        satisfied=good_fraction >= 1.0 / 3.0,
    ))

    # Step 3 — Algorithm 1 + Lemma 4: witness found at rate ~ d^2/m.
    instance = DBeta(n=n, d=d, reps=1)
    witnesses = 0
    escape_ok = 0
    for _ in range(trials):
        draw = instance.sample_draw(spawn(gen))
        report = witness_from_algorithm1(
            pi, draw, epsilon, trials=128, rng=spawn(gen)
        )
        if report is not None:
            witnesses += 1
            if report.escape.point >= 0.25:
                escape_ok += 1
    witness_rate = witnesses / trials
    # The proof needs the witness rate to stay below ~delta for Pi to
    # survive; a constant rate refutes Pi outright (Corollary 17).
    trace.add(ProofStep(
        name="algorithm1",
        claim="rate of draws where Algorithm 1 finds a large-inner-"
              "product pair must be at most ~delta for an embedding",
        measured=witness_rate,
        requirement=delta,
        satisfied=witness_rate <= delta,
        detail=f"({escape_ok}/{witnesses} witnesses meet the Lemma 4 "
               f"escape bound)",
    ))

    trace.required_m = float(d * d)
    trace.add(ProofStep(
        name="row_bound",
        claim="an abundant embedding must have more than d^2 rows",
        measured=float(m),
        requirement=float(d * d),
        satisfied=m > d * d,
    ))

    failure = failure_estimate(
        _FixedFamily(pi), instance, epsilon, trials=trials,
        rng=spawn(gen), fresh_sketch=False,
    )
    trace.empirical_failure = failure
    trace.refuted = failure.point > delta
    return trace


class _FixedFamily:
    """Adapter presenting one fixed matrix as a (degenerate) family."""

    def __init__(self, pi: MatrixLike):
        self._pi = pi
        self.m, self.n = pi.shape

    def sample(self, rng=None, lazy: bool = False):
        from ..sketch.base import Sketch

        return Sketch(self._pi)
