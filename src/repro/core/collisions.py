"""Collision structure of sketching matrices.

Two columns ``i, j`` of ``Π`` *collide* (``i ↔ j``) when they share at
least one ``θ-heavy`` row (Section 4).  For ``s = 1`` sketches, collisions
reduce to two columns hashing into the same bucket, and the birthday
paradox drives Theorem 8.  This module computes collision graphs, bucket
occupancies (the ``B_i`` of Lemma 7), and the closed-form birthday
predictions the experiments compare against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..utils.validation import check_positive_int
from .heavy import heavy_mask

__all__ = [
    "shared_heavy_rows",
    "collide",
    "collision_count_matrix",
    "colliding_pairs",
    "bucket_counts",
    "has_bucket_collision",
    "birthday_collision_probability",
    "birthday_lower_bound_m",
    "CollisionSummary",
    "collision_summary",
]

MatrixLike = Union[np.ndarray, sp.spmatrix]


def shared_heavy_rows(pi: MatrixLike, i: int, j: int,
                      theta: float) -> np.ndarray:
    """Rows ``l`` with both ``|Π[l,i]| ≥ θ`` and ``|Π[l,j]| ≥ θ``."""
    mask = heavy_mask(pi, theta).tocsc()
    rows_i = mask.indices[mask.indptr[i]:mask.indptr[i + 1]]
    rows_j = mask.indices[mask.indptr[j]:mask.indptr[j + 1]]
    return np.intersect1d(rows_i, rows_j)


def collide(pi: MatrixLike, i: int, j: int, theta: float) -> bool:
    """The paper's ``i ↔ j`` predicate (share ≥ 1 ``θ``-heavy row)."""
    return shared_heavy_rows(pi, i, j, theta).size > 0


def collision_count_matrix(pi: MatrixLike, theta: float,
                           columns: Sequence[int] = None) -> sp.csr_matrix:
    """Matrix ``C`` with ``C[a, b]`` = number of shared ``θ``-heavy rows.

    Restricted to the given ``columns`` (all columns when omitted);
    the diagonal holds each column's own heavy count.  Computed as
    ``HᵀH`` on the heavy mask, which is efficient while the mask is sparse.
    """
    mask = heavy_mask(pi, theta).tocsc().astype(np.int64)
    if columns is not None:
        mask = mask[:, np.asarray(columns, dtype=int)]
    return (mask.T @ mask).tocsr()


def colliding_pairs(pi: MatrixLike, theta: float,
                    columns: Sequence[int] = None) -> List[Tuple[int, int]]:
    """All unordered colliding pairs ``(a, b)``, ``a < b``.

    Indices refer to positions in ``columns`` when given, else to column
    indices of ``Π``.
    """
    counts = collision_count_matrix(pi, theta, columns).tocoo()
    pairs = [
        (int(a), int(b))
        for a, b in zip(counts.row, counts.col)
        if a < b
    ]
    return sorted(pairs)


def bucket_counts(pi: MatrixLike, chosen_columns: Sequence[int],
                  low: float, high: float) -> np.ndarray:
    """The ``B_i`` of Lemma 7 for an ``s = 1`` sketch.

    For each row (bucket) ``i`` of ``Π``, counts the distinct chosen
    columns ``j`` whose single nonzero entry lies in row ``i`` with
    absolute value in ``[low, high]``.  Chosen columns with no qualifying
    entry contribute nowhere.
    """
    chosen = np.asarray(chosen_columns, dtype=int)
    m = pi.shape[0]
    counts = np.zeros(m, dtype=int)
    csc = pi.tocsc() if sp.issparse(pi) else sp.csc_matrix(
        np.asarray(pi, dtype=float)
    )
    for col in chosen:
        start, end = csc.indptr[col], csc.indptr[col + 1]
        rows = csc.indices[start:end]
        values = np.abs(csc.data[start:end])
        ok = (values >= low) & (values <= high)
        for row in rows[ok]:
            counts[row] += 1
    return counts


def has_bucket_collision(pi: MatrixLike, chosen_columns: Sequence[int],
                         low: float, high: float) -> bool:
    """True when some bucket holds ≥ 2 chosen columns (``B_i > 1``)."""
    return bool(np.any(bucket_counts(pi, chosen_columns, low, high) > 1))


def birthday_collision_probability(q: int, m: int) -> float:
    """Exact probability that ``q`` uniform throws into ``m`` buckets
    collide.

    ``1 - ∏_{i=1}^{q-1} (1 - i/m)``; the folklore bound behind Theorem 8's
    final counting step.
    """
    q = check_positive_int(q, "q")
    m = check_positive_int(m, "m")
    if q > m:
        return 1.0
    log_no_collision = 0.0
    for i in range(1, q):
        log_no_collision += math.log1p(-i / m)
    return 1.0 - math.exp(log_no_collision)


def birthday_lower_bound_m(q: int, delta: float) -> float:
    """Smallest ``m`` for which ``q`` throws avoid collision w.p. ≥ 1-δ.

    From ``P[collision] ≈ 1 - e^{-q(q-1)/(2m)} ≤ δ`` one needs
    ``m ≥ q(q-1) / (2 ln(1/(1-δ)))`` — the ``m = Ω(q²/δ)`` shape quoted in
    the paper (with ``q = d/(16ε)`` giving ``Ω(d²/(ε²δ))``).
    """
    q = check_positive_int(q, "q")
    if not (0 < delta < 1):
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    if q == 1:
        return 1.0
    return q * (q - 1) / (2.0 * math.log(1.0 / (1.0 - delta)))


@dataclass(frozen=True)
class CollisionSummary:
    """Aggregate collision statistics of a set of columns of ``Π``.

    Attributes
    ----------
    columns:
        Number of columns examined.
    colliding_pairs:
        Number of unordered colliding pairs among them.
    max_shared_rows:
        Largest number of heavy rows shared by any pair.
    mean_shared_rows:
        Mean shared heavy rows over *colliding* pairs (the paper's ``Δ``),
        0.0 when there are none.
    """

    columns: int
    colliding_pairs: int
    max_shared_rows: int
    mean_shared_rows: float


def collision_summary(pi: MatrixLike, theta: float,
                      columns: Sequence[int] = None) -> CollisionSummary:
    """Summarize the collision structure (the ``Δ`` statistics of
    Section 4.1)."""
    counts = collision_count_matrix(pi, theta, columns).tocoo()
    shared = [
        int(v) for a, b, v in zip(counts.row, counts.col, counts.data)
        if a < b and v > 0
    ]
    num_columns = counts.shape[0]
    if shared:
        return CollisionSummary(
            columns=num_columns,
            colliding_pairs=len(shared),
            max_shared_rows=max(shared),
            mean_shared_rows=float(np.mean(shared)),
        )
    return CollisionSummary(
        columns=num_columns, colliding_pairs=0,
        max_shared_rows=0, mean_shared_rows=0.0,
    )
