"""Executable versions of the paper's quantitative lemmas.

Each function evaluates a lemma's conclusion *exactly* on concrete inputs
(finite probability spaces are enumerated, not sampled), so the test suite
and experiment E5/E6 can check the proven inequalities directly:

* **Lemma 3** — among i.i.d. uniform samples ``u, v`` from a finite set
  ``S`` in the unit ball, ``P[⟨u,v⟩ ≥ -κε] > 2ε`` for ``κ = 3``,
  ``ε ∈ (0, 1/9)``.
* **Fact 5** — for ``|x₁| ≥ |x₂| ≥ |x₃|``, ``|x₁| ≥ a`` and independent
  Rademacher ``σ₁, σ₂``:
  ``P[σ₁x₁ + σ₂x₂ + σ₁σ₂x₃ ≥ a] ≥ 1/4`` and symmetrically ``≤ -a``.
* **Lemma 14** — if a row ``l`` of ``A`` has a nonempty ``θ``-heavy set
  ``S`` and the columns of ``S`` have squared norm ≤ ``1 + θ²``, then for
  independent ``u, v ~ Unif(S)``,
  ``P[⟨A_u, A_v⟩ ≥ θ² − κε] ≥ ε/2``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..linalg.sparse_ops import densify
from ..utils.validation import check_epsilon

__all__ = [
    "KAPPA",
    "lemma3_probability",
    "lemma3_holds",
    "lemma3_bound",
    "fact5_probabilities",
    "fact5_holds",
    "Lemma14Result",
    "lemma14_probability",
    "lemma14_holds",
]

#: The paper's constant κ from Lemma 3.
KAPPA = 3.0


def _as_vector_set(vectors: Union[np.ndarray, Sequence]) -> np.ndarray:
    arr = np.asarray(vectors, dtype=float)
    if arr.ndim != 2 or arr.shape[0] == 0:
        raise ValueError(
            "vectors must be a nonempty 2-d array (one vector per row)"
        )
    return arr


def lemma3_probability(vectors: np.ndarray, epsilon: float,
                       kappa: float = KAPPA) -> float:
    """Exact ``P[⟨u,v⟩ ≥ -κε]`` for ``u, v`` i.i.d. uniform over rows.

    Sampling is *with replacement* (independent samples), exactly as in
    Lemma 3, so the diagonal pairs ``u = v`` are included.
    """
    arr = _as_vector_set(vectors)
    epsilon = check_epsilon(epsilon, upper=1.0 / 9.0)
    norms = np.linalg.norm(arr, axis=1)
    if np.any(norms > 1.0 + 1e-9):
        raise ValueError("Lemma 3 requires all vectors in the unit ball")
    gram = arr @ arr.T
    return float(np.mean(gram >= -kappa * epsilon))


def lemma3_holds(vectors: np.ndarray, epsilon: float,
                 kappa: float = KAPPA) -> bool:
    """Check Lemma 3's conclusion ``P[⟨u,v⟩ ≥ -κε] > 2ε`` on ``vectors``."""
    return lemma3_probability(vectors, epsilon, kappa) > 2.0 * epsilon


def lemma3_bound(epsilon: float) -> float:
    """The guaranteed probability level ``2ε`` from Lemma 3."""
    epsilon = check_epsilon(epsilon, upper=1.0 / 9.0)
    return 2.0 * epsilon


def fact5_probabilities(x1: float, x2: float, x3: float,
                        a: float) -> Tuple[float, float]:
    """Exact two-sided probabilities of Fact 5.

    Enumerates the four sign assignments of ``(σ₁, σ₂)`` and returns
    ``(P[σ₁x₁ + σ₂x₂ + σ₁σ₂x₃ ≥ a], P[… ≤ -a])``.  Input ordering and the
    ``|x₁| ≥ a`` premise are validated — Fact 5 only claims the bound under
    those hypotheses.
    """
    if not (abs(x1) >= abs(x2) >= abs(x3)):
        raise ValueError(
            "Fact 5 requires |x1| >= |x2| >= |x3|; got "
            f"({x1}, {x2}, {x3})"
        )
    if a < 0:
        raise ValueError(f"a must be nonnegative, got {a}")
    if abs(x1) < a:
        raise ValueError(f"Fact 5 requires |x1| >= a; got |x1|={abs(x1)}, a={a}")
    values = [
        s1 * x1 + s2 * x2 + s1 * s2 * x3
        for s1, s2 in itertools.product((-1.0, 1.0), repeat=2)
    ]
    upper = sum(1 for v in values if v >= a) / 4.0
    lower = sum(1 for v in values if v <= -a) / 4.0
    return upper, lower


def fact5_holds(x1: float, x2: float, x3: float, a: float) -> bool:
    """True when both Fact 5 bounds (each ≥ 1/4) hold."""
    upper, lower = fact5_probabilities(x1, x2, x3, a)
    return upper >= 0.25 and lower >= 0.25


@dataclass(frozen=True)
class Lemma14Result:
    """Outcome of evaluating Lemma 14 on a concrete matrix and row.

    Attributes
    ----------
    probability:
        Exact ``P[⟨A_u, A_v⟩ ≥ θ² − κε]`` for ``u, v`` i.i.d. uniform over
        the heavy set ``S`` of the chosen row.
    bound:
        The guaranteed level ``ε/2``.
    heavy_set_size:
        ``|S|``.
    """

    probability: float
    bound: float
    heavy_set_size: int

    @property
    def holds(self) -> bool:
        return self.probability >= self.bound


def lemma14_probability(a: Union[np.ndarray, sp.spmatrix], row: int,
                        theta: float, epsilon: float,
                        kappa: float = KAPPA) -> Lemma14Result:
    """Evaluate Lemma 14 for matrix ``a`` at row ``row`` and threshold ``θ``.

    Validates the premises (nonempty heavy set; squared column norms of
    heavy columns ≤ ``1 + θ²``) and computes the exact pair probability.
    """
    epsilon = check_epsilon(epsilon, upper=1.0 / 9.0)
    dense = densify(a)
    if not (0 <= row < dense.shape[0]):
        raise IndexError(f"row {row} out of range for {dense.shape[0]} rows")
    heavy = np.flatnonzero(np.abs(dense[row]) >= theta)
    if heavy.size == 0:
        raise ValueError(f"row {row} has no {theta}-heavy entries")
    sub = dense[:, heavy]
    sq_norms = np.sum(sub * sub, axis=0)
    if np.any(sq_norms > 1.0 + theta * theta + 1e-9):
        raise ValueError(
            "Lemma 14 requires heavy columns with squared norm <= 1 + theta^2"
        )
    gram = sub.T @ sub
    probability = float(np.mean(gram >= theta * theta - kappa * epsilon))
    return Lemma14Result(
        probability=probability,
        bound=epsilon / 2.0,
        heavy_set_size=int(heavy.size),
    )


def lemma14_holds(a: Union[np.ndarray, sp.spmatrix], row: int, theta: float,
                  epsilon: float, kappa: float = KAPPA) -> bool:
    """Check Lemma 14's conclusion on concrete inputs."""
    return lemma14_probability(a, row, theta, epsilon, kappa).holds
