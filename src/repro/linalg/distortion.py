"""Exact subspace-embedding distortion.

For an isometry ``U ∈ R^{n×d}`` and a sketch ``Π ∈ R^{m×n}``, the embedding
condition of Definition 1,

    ∀ x ∈ range(U):  (1-ε)‖x‖₂ ≤ ‖Πx‖₂ ≤ (1+ε)‖x‖₂,

holds exactly when every singular value of ``ΠU`` lies in ``[1-ε, 1+ε]``.
This module computes those singular values and derives the distortion, the
pass/fail predicate, and the worst-case witness directions used by the
lower-bound certification code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..utils.validation import check_epsilon

__all__ = [
    "DistortionReport",
    "sketched_basis",
    "singular_interval",
    "singular_interval_of_product",
    "distortion",
    "distortion_of_product",
    "distortions_of_products",
    "distortion_report",
    "is_subspace_embedding_for",
    "worst_vector",
    "vector_distortion",
]

MatrixLike = Union[np.ndarray, sp.spmatrix]


def sketched_basis(pi: MatrixLike, u: np.ndarray) -> np.ndarray:
    """Compute ``ΠU`` as a dense ``m × d`` array.

    ``Π`` may be dense or scipy-sparse; ``U`` is densified (it is ``n × d``
    with small ``d``, so the product is small even when ``n`` is large).
    """
    u = np.asarray(u, dtype=float)
    if u.ndim != 2:
        raise ValueError(f"u must be 2-dimensional, got ndim={u.ndim}")
    if pi.shape[1] != u.shape[0]:
        raise ValueError(
            f"incompatible shapes: pi is {pi.shape}, u is {u.shape}"
        )
    if sp.issparse(pi):
        return np.asarray(pi @ u)
    return np.asarray(pi, dtype=float) @ u


def singular_interval(pi: MatrixLike, u: np.ndarray) -> Tuple[float, float]:
    """Smallest and largest singular values of ``ΠU``."""
    return singular_interval_of_product(sketched_basis(pi, u))


def singular_interval_of_product(product: np.ndarray) -> Tuple[float, float]:
    """Extreme singular values of an already-computed ``ΠU``."""
    product = np.asarray(product, dtype=float)
    sigma = np.linalg.svd(product, compute_uv=False)
    if sigma.size == 0:
        raise ValueError("empty product matrix")
    # ΠU may have fewer rows than columns, in which case the smallest
    # singular value of the embedding map is 0 (a whole direction is
    # annihilated), not the smallest of the m computed values.
    smallest = float(sigma.min()) if product.shape[0] >= product.shape[1] else 0.0
    return smallest, float(sigma.max())


def distortion(pi: MatrixLike, u: np.ndarray) -> float:
    """Worst multiplicative distortion of ``Π`` on ``range(U)``.

    Returns ``max(1 - σ_min, σ_max - 1)``, i.e. the smallest ``ε`` such that
    ``Π`` is an ε-embedding for the subspace.  ``U`` must be an isometry for
    the value to carry that meaning; this is not re-checked here for speed.
    """
    lo, hi = singular_interval(pi, u)
    return max(1.0 - lo, hi - 1.0)


def distortion_of_product(product: np.ndarray) -> float:
    """Worst distortion from an already-computed ``ΠU``."""
    lo, hi = singular_interval_of_product(product)
    return max(1.0 - lo, hi - 1.0)


#: A trial's Gram spectrum is trusted only while ``σ²_min/σ²_max`` stays
#: above this; below it the squared form has lost too many digits (error
#: in ``σ_min`` approaches ``√ε_mach · σ_max ≈ 1e-8``) and the trial is
#: recomputed from the rectangular product directly.
_GRAM_RATIO_FLOOR = 1e-12


def distortions_of_products(products: np.ndarray,
                            rows: Optional[int] = None) -> np.ndarray:
    """Per-draw distortions for a stack of products ``(B, k, d)``.

    One gufunc-batched SVD over the whole stack — the reduction step of
    the batched trial engine (:mod:`repro.sketch.batched`).  ``products``
    may hold *row-compacted* sketched bases: zero rows of ``ΠU`` change no
    singular value, so the engine drops them (padding back to a common
    ``k``) before stacking.  ``rows`` is the true row count ``m`` of the
    uncompacted products; it decides the annihilation rule — when
    ``m < d`` (or the compacted ``k < d``), a whole direction is lost and
    ``σ_min`` is exactly 0, mirroring
    :func:`singular_interval_of_product`.

    The SVD runs on the ``d × d`` Gram matrices ``(ΠU)ᵀ(ΠU)`` rather than
    the ``k × d`` products — for ``k ≫ d`` the BLAS Gram build plus a
    small-matrix SVD is several times cheaper than a rectangular SVD, and
    the singular values of the (symmetric PSD) Gram matrix are exactly
    the squared singular values of ``ΠU``.  Squaring halves the working
    precision near rank deficiency, so any trial whose squared spectrum
    spans more than :data:`_GRAM_RATIO_FLOOR` is recomputed from its
    rectangular product; in Monte-Carlo runs those are the rare
    annihilation events, so the fallback stays off the hot path.
    """
    products = np.asarray(products, dtype=float)
    if products.ndim != 3:
        raise ValueError(
            f"products must be a (B, k, d) stack, got ndim={products.ndim}"
        )
    batch, k, d = products.shape
    if k == 0 or d == 0:
        raise ValueError("empty product matrices")
    true_rows = k if rows is None else int(rows)
    if k <= 2 * d:
        # Near-square products: the Gram detour saves nothing (the SVD it
        # avoids is already d-sized), so take the rectangular SVD directly
        # at full precision.
        sigma = np.linalg.svd(products, compute_uv=False)
        hi = sigma.max(axis=1)
        if true_rows >= d and k >= d:
            lo = sigma.min(axis=1)
        else:
            lo = np.zeros(batch)
        return np.maximum(1.0 - lo, hi - 1.0)
    gram = np.matmul(np.swapaxes(products, -1, -2), products)
    sigma_sq = np.linalg.svd(gram, compute_uv=False)
    hi_sq = sigma_sq.max(axis=1)
    hi = np.sqrt(hi_sq)
    if true_rows >= d and k >= d:
        lo_sq = sigma_sq.min(axis=1)
        lo = np.sqrt(lo_sq)
        suspect = np.flatnonzero(lo_sq <= _GRAM_RATIO_FLOOR * hi_sq)
        for index in suspect:
            exact = np.linalg.svd(products[index], compute_uv=False)
            lo[index] = exact.min()
            hi[index] = exact.max()
    else:
        lo = np.zeros(batch)
    return np.maximum(1.0 - lo, hi - 1.0)


@dataclass(frozen=True)
class DistortionReport:
    """Full diagnostic of a sketch applied to one subspace.

    Attributes
    ----------
    sigma_min, sigma_max:
        Extreme singular values of ``ΠU``.
    distortion:
        ``max(1 - σ_min, σ_max - 1)``.
    epsilon:
        The tolerance the report was evaluated against.
    """

    sigma_min: float
    sigma_max: float
    distortion: float
    epsilon: float

    @property
    def ok(self) -> bool:
        """True when the embedding satisfies the ε-condition."""
        return self.distortion <= self.epsilon

    @property
    def squared_interval(self) -> Tuple[float, float]:
        """Range of ``‖Πx‖²`` over unit ``x`` in the subspace."""
        return self.sigma_min**2, self.sigma_max**2

    def __str__(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (
            f"{status}: sigma in [{self.sigma_min:.4f}, {self.sigma_max:.4f}]"
            f", distortion {self.distortion:.4f} vs eps {self.epsilon:.4f}"
        )


def distortion_report(pi: MatrixLike, u: np.ndarray,
                      epsilon: float) -> DistortionReport:
    """Evaluate ``Π`` on ``range(U)`` against tolerance ``epsilon``."""
    epsilon = check_epsilon(epsilon)
    lo, hi = singular_interval(pi, u)
    return DistortionReport(
        sigma_min=lo,
        sigma_max=hi,
        distortion=max(1.0 - lo, hi - 1.0),
        epsilon=epsilon,
    )


def is_subspace_embedding_for(pi: MatrixLike, u: np.ndarray,
                              epsilon: float) -> bool:
    """True when ``Π`` ε-embeds ``range(U)`` (Definition 1, single draw)."""
    return distortion_report(pi, u, epsilon).ok


def worst_vector(pi: MatrixLike, u: np.ndarray) -> np.ndarray:
    """Unit coefficient vector ``x`` attaining the worst distortion.

    Returns ``x ∈ R^d`` with ``‖x‖₂ = 1`` maximizing ``|‖ΠUx‖₂ - 1|``; this
    is the right-singular vector of ``ΠU`` for the extreme singular value.
    """
    product = sketched_basis(pi, u)
    _, sigma, vt = np.linalg.svd(product, full_matrices=True)
    d = product.shape[1]
    if product.shape[0] < d:
        # Some direction is annihilated entirely: any vector in the null
        # space of ΠU achieves distortion 1.
        return vt[-1]
    hi_dev = sigma[0] - 1.0
    lo_dev = 1.0 - sigma[d - 1]
    return vt[0] if hi_dev >= lo_dev else vt[d - 1]


def vector_distortion(pi: MatrixLike, u: np.ndarray,
                      x: np.ndarray) -> float:
    """Distortion ``|‖ΠUx‖₂ / ‖x‖₂ - 1|`` of one coefficient vector."""
    x = np.asarray(x, dtype=float)
    norm = np.linalg.norm(x)
    if norm == 0:
        raise ValueError("x must be nonzero")
    image = sketched_basis(pi, u) @ x
    return float(abs(np.linalg.norm(image) / norm - 1.0))
