"""Subspaces of R^n represented by orthonormal bases.

A ``d``-dimensional subspace ``T ⊆ R^n`` is represented by an isometry
``U ∈ R^{n×d}`` (orthonormal columns), so that ``T = range(U)`` and for any
coefficient vector ``x ∈ R^d`` the point ``Ux ∈ T`` has ``‖Ux‖₂ = ‖x‖₂``.
This is exactly the normalization used throughout the paper: proving the
subspace-embedding property for an isometry ``U`` is proving it for the
subspace ``range(U)``.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import RngLike, as_generator
from ..utils.validation import check_matrix, check_positive_int

__all__ = [
    "orthonormal_basis",
    "is_isometry",
    "random_subspace",
    "coherent_subspace",
    "spanning_isometry",
    "subspace_angle",
]

#: Default tolerance for isometry checks; scaled by matrix size internally.
DEFAULT_TOL = 1e-10


def orthonormal_basis(a: np.ndarray) -> np.ndarray:
    """Orthonormal basis of the column space of ``a`` via thin QR.

    Columns of ``a`` must be linearly independent; otherwise the result
    would silently represent a smaller subspace, so we raise instead.
    """
    a = check_matrix(a, "a")
    n, d = a.shape
    if d > n:
        raise ValueError(
            f"cannot have {d} independent columns in R^{n}"
        )
    q, r = np.linalg.qr(a)
    diag = np.abs(np.diag(r))
    scale = max(np.max(diag), 1.0)
    if np.any(diag < 1e-12 * scale):
        raise ValueError("columns of a are (numerically) linearly dependent")
    return q


def is_isometry(u: np.ndarray, tol: float = 1e-8) -> bool:
    """True when ``u`` has orthonormal columns up to tolerance ``tol``."""
    u = np.asarray(u, dtype=float)
    if u.ndim != 2 or u.shape[0] < u.shape[1]:
        return False
    gram = u.T @ u
    return bool(np.allclose(gram, np.eye(u.shape[1]), atol=tol))


def random_subspace(n: int, d: int, rng: RngLike = None) -> np.ndarray:
    """Haar-random ``d``-dimensional subspace of R^n, as an isometry.

    Sampled by orthonormalizing a Gaussian matrix; this is the "easy"
    instance against which the paper's hard instances are contrasted
    (experiment E1's control column).
    """
    n = check_positive_int(n, "n")
    d = check_positive_int(d, "d")
    if d > n:
        raise ValueError(f"d ({d}) must not exceed n ({n})")
    g = as_generator(rng).standard_normal((n, d))
    return orthonormal_basis(g)


def coherent_subspace(n: int, d: int, rng: RngLike = None) -> np.ndarray:
    """A maximally coherent subspace: ``d`` distinct canonical basis vectors.

    This is the NN13b-style instance (a row-permuted ``(I_d 0)^T``), the
    ``β = 1`` extreme of the paper's ``D_β`` family without the Rademacher
    signs.  Useful as a deterministic worst case for row-sampling sketches.
    """
    n = check_positive_int(n, "n")
    d = check_positive_int(d, "d")
    if d > n:
        raise ValueError(f"d ({d}) must not exceed n ({n})")
    rows = as_generator(rng).choice(n, size=d, replace=False)
    u = np.zeros((n, d))
    u[rows, np.arange(d)] = 1.0
    return u


def spanning_isometry(rows: np.ndarray, signs: np.ndarray, n: int,
                      scale: float) -> np.ndarray:
    """Build an isometry whose column ``i`` is supported on ``rows[:, i]``.

    Each column ``i`` has entries ``signs[j, i] * scale`` at positions
    ``rows[j, i]``.  Rows per column must be distinct within the column and
    ``scale² · rows.shape[0] == 1`` for exact unit columns; column
    orthogonality additionally requires disjoint supports across columns.
    The caller is responsible for those structural guarantees — this is the
    shared kernel behind the ``D_β`` construction and test fixtures.
    """
    rows = np.asarray(rows, dtype=int)
    signs = np.asarray(signs, dtype=float)
    if rows.shape != signs.shape or rows.ndim != 2:
        raise ValueError("rows and signs must be 2-d arrays of equal shape")
    reps, d = rows.shape
    u = np.zeros((n, d))
    for i in range(d):
        u[rows[:, i], i] = signs[:, i] * scale
    return u


def subspace_angle(u: np.ndarray, v: np.ndarray) -> float:
    """Largest principal angle (radians) between ``range(u)``, ``range(v)``.

    Both inputs must be isometries of the same ambient dimension.  Returns a
    value in ``[0, π/2]``; 0 means identical subspaces.
    """
    u = check_matrix(u, "u")
    v = check_matrix(v, "v")
    if u.shape[0] != v.shape[0]:
        raise ValueError("u and v must share the ambient dimension")
    if not is_isometry(u) or not is_isometry(v):
        raise ValueError("u and v must both be isometries")
    sigma = np.linalg.svd(u.T @ v, compute_uv=False)
    smallest = float(np.clip(sigma.min() if sigma.size else 0.0, -1.0, 1.0))
    return float(np.arccos(smallest))
