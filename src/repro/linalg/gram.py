"""Column-geometry tools: norms, Gram matrices and inner products.

The paper's arguments are phrased in terms of the columns of ``Π`` (and of
``ΠV``): their ℓ₂-norms (Lemma 6), pairwise inner products (Lemma 4,
Lemma 14), and the heavy entries they contain.  These helpers operate
uniformly on dense and scipy-sparse matrices.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np
import scipy.sparse as sp

__all__ = [
    "column_norms",
    "column_sparsities",
    "max_column_sparsity",
    "gram_matrix",
    "column_inner_product",
    "offdiagonal_extreme",
    "columns_with_norm_in",
]

MatrixLike = Union[np.ndarray, sp.spmatrix]


def _ensure_2d(a: MatrixLike) -> MatrixLike:
    if a.ndim != 2:
        raise ValueError(f"expected a matrix, got ndim={a.ndim}")
    return a


def column_norms(a: MatrixLike) -> np.ndarray:
    """ℓ₂-norm of every column, as a 1-d array of length ``a.shape[1]``."""
    _ensure_2d(a)
    if sp.issparse(a):
        squared = np.asarray(a.multiply(a).sum(axis=0)).ravel()
        return np.sqrt(squared)
    return np.linalg.norm(np.asarray(a, dtype=float), axis=0)


def column_sparsities(a: MatrixLike) -> np.ndarray:
    """Number of nonzero entries in every column."""
    _ensure_2d(a)
    if sp.issparse(a):
        return np.asarray((a != 0).sum(axis=0)).ravel().astype(int)
    return np.count_nonzero(np.asarray(a), axis=0).astype(int)


def max_column_sparsity(a: MatrixLike) -> int:
    """Maximum column sparsity ``s`` — the paper's sparsity parameter."""
    sparsities = column_sparsities(a)
    return int(sparsities.max()) if sparsities.size else 0


def gram_matrix(a: MatrixLike) -> np.ndarray:
    """Dense Gram matrix ``AᵀA`` of column inner products."""
    _ensure_2d(a)
    if sp.issparse(a):
        return np.asarray((a.T @ a).toarray())
    a = np.asarray(a, dtype=float)
    return a.T @ a


def column_inner_product(a: MatrixLike, i: int, j: int) -> float:
    """Inner product ``⟨A_{*,i}, A_{*,j}⟩`` of two columns."""
    _ensure_2d(a)
    cols = a.shape[1]
    if not (0 <= i < cols and 0 <= j < cols):
        raise IndexError(f"column indices ({i}, {j}) out of range for {cols}")
    if sp.issparse(a):
        ci = a.getcol(i)
        cj = a.getcol(j)
        return float((ci.T @ cj).toarray()[0, 0])
    a = np.asarray(a, dtype=float)
    return float(a[:, i] @ a[:, j])


def offdiagonal_extreme(a: MatrixLike) -> Tuple[float, Tuple[int, int]]:
    """Largest absolute off-diagonal Gram entry and its column pair.

    Returns ``(value, (i, j))`` with ``i < j`` maximizing
    ``|⟨A_{*,i}, A_{*,j}⟩|``.  Requires at least two columns.
    """
    gram = gram_matrix(a)
    d = gram.shape[0]
    if d < 2:
        raise ValueError("need at least two columns")
    masked = np.abs(gram.copy())
    np.fill_diagonal(masked, -np.inf)
    flat_index = int(np.argmax(masked))
    i, j = divmod(flat_index, d)
    if i > j:
        i, j = j, i
    return float(abs(gram[i, j])), (i, j)


def columns_with_norm_in(a: MatrixLike, low: float,
                         high: float) -> np.ndarray:
    """Indices of columns whose ℓ₂-norm lies in ``[low, high]``.

    Lemma 6 is stated in exactly these terms: the "good" columns of ``Π``
    are those with norm in ``[1-ε, 1+ε]``.
    """
    if low > high:
        raise ValueError(f"low ({low}) must not exceed high ({high})")
    norms = column_norms(a)
    return np.flatnonzero((norms >= low) & (norms <= high))
