"""Numerical linear algebra substrate: subspaces, distortion, Gram tools."""

from .distortion import (
    DistortionReport,
    distortion,
    distortion_of_product,
    distortion_report,
    is_subspace_embedding_for,
    singular_interval,
    singular_interval_of_product,
    sketched_basis,
    vector_distortion,
    worst_vector,
)
from .gram import (
    column_inner_product,
    column_norms,
    column_sparsities,
    columns_with_norm_in,
    gram_matrix,
    max_column_sparsity,
    offdiagonal_extreme,
)
from .hadamard import fwht, hadamard_matrix, is_hadamard, next_power_of_two
from .sparse_ops import (
    columns_as_csc,
    densify,
    from_triplets,
    nnz,
    sketch_apply_cost,
)
from .subspace import (
    coherent_subspace,
    is_isometry,
    orthonormal_basis,
    random_subspace,
    spanning_isometry,
    subspace_angle,
)

__all__ = [
    "DistortionReport",
    "distortion",
    "distortion_of_product",
    "distortion_report",
    "is_subspace_embedding_for",
    "singular_interval",
    "singular_interval_of_product",
    "sketched_basis",
    "vector_distortion",
    "worst_vector",
    "column_inner_product",
    "column_norms",
    "column_sparsities",
    "columns_with_norm_in",
    "gram_matrix",
    "max_column_sparsity",
    "offdiagonal_extreme",
    "fwht",
    "hadamard_matrix",
    "is_hadamard",
    "next_power_of_two",
    "columns_as_csc",
    "densify",
    "from_triplets",
    "nnz",
    "sketch_apply_cost",
    "coherent_subspace",
    "is_isometry",
    "orthonormal_basis",
    "random_subspace",
    "spanning_isometry",
    "subspace_angle",
]
