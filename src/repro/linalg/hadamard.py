"""Hadamard matrices (Sylvester construction) and fast transforms.

Used in two places: the Remark 10 tightness construction (block-diagonal
``√(8ε) H`` sketches) and the SRHT baseline sketch.  The fast Walsh–Hadamard
transform keeps the SRHT at ``O(n log n)`` per vector without materializing
the dense Hadamard matrix.
"""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_power_of_two

__all__ = [
    "hadamard_matrix",
    "fwht",
    "is_hadamard",
    "next_power_of_two",
]


def hadamard_matrix(order: int) -> np.ndarray:
    """Sylvester Hadamard matrix of size ``order × order`` (power of two).

    Entries are ±1 and ``H Hᵀ = order · I``.
    """
    order = check_power_of_two(order, "order")
    h = np.ones((1, 1))
    while h.shape[0] < order:
        h = np.block([[h, h], [h, -h]])
    return h


def fwht(x: np.ndarray) -> np.ndarray:
    """In-place-free fast Walsh–Hadamard transform along axis 0.

    Computes ``H x`` for the Sylvester Hadamard matrix ``H`` of matching
    (power-of-two) order in ``O(n log n)`` operations per column.  The
    transform is *unnormalized*: applying it twice scales by ``n``.
    """
    x = np.array(x, dtype=float, copy=True)
    n = x.shape[0]
    check_power_of_two(n, "len(x)")
    trailing = x.shape[1:]
    work = x.reshape(n, -1)
    h = 1
    while h < n:
        # Butterfly over blocks of size 2h.
        blocks = work.reshape(n // (2 * h), 2, h, work.shape[1])
        top = blocks[:, 0] + blocks[:, 1]
        bottom = blocks[:, 0] - blocks[:, 1]
        work = np.concatenate(
            [top[:, None], bottom[:, None]], axis=1
        ).reshape(n, work.shape[1])
        h *= 2
    return work.reshape((n,) + trailing)


def is_hadamard(h: np.ndarray, tol: float = 1e-9) -> bool:
    """True when ``h`` is a (±1, orthogonal-row) Hadamard matrix."""
    h = np.asarray(h, dtype=float)
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        return False
    n = h.shape[0]
    if not np.all(np.isclose(np.abs(h), 1.0, atol=tol)):
        return False
    return bool(np.allclose(h @ h.T, n * np.eye(n), atol=tol * n))


def next_power_of_two(n: int) -> int:
    """Smallest power of two that is ≥ ``n``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    p = 1
    while p < n:
        p *= 2
    return p
