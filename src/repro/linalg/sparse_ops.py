"""Sparse-matrix helpers shared by the sketch constructions.

Sketches are stored as ``scipy.sparse.csc_matrix`` (column-sparse, matching
the paper's per-column sparsity parameter ``s``).  These helpers build them
from (row, column, value) triplets, count nonzeros, and estimate the cost of
applying them.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from ..utils.validation import check_positive_int

__all__ = [
    "from_triplets",
    "nnz",
    "sketch_apply_cost",
    "densify",
    "columns_as_csc",
]

MatrixLike = Union[np.ndarray, sp.spmatrix]


def from_triplets(rows: np.ndarray, cols: np.ndarray, values: np.ndarray,
                  shape: tuple) -> sp.csc_matrix:
    """Build a CSC matrix from coordinate triplets.

    Duplicate (row, col) coordinates are summed, matching scipy's COO
    semantics — sketch constructions that sample positions *with*
    replacement rely on this (colliding OSNAP entries add up).
    """
    rows = np.asarray(rows, dtype=int).ravel()
    cols = np.asarray(cols, dtype=int).ravel()
    values = np.asarray(values, dtype=float).ravel()
    if not (rows.shape == cols.shape == values.shape):
        raise ValueError("rows, cols and values must have equal length")
    m, n = shape
    check_positive_int(m, "shape[0]")
    check_positive_int(n, "shape[1]")
    if rows.size and (rows.min() < 0 or rows.max() >= m):
        raise ValueError("row index out of range")
    if cols.size and (cols.min() < 0 or cols.max() >= n):
        raise ValueError("column index out of range")
    coo = sp.coo_matrix((values, (rows, cols)), shape=(m, n))
    return coo.tocsc()


def nnz(a: MatrixLike) -> int:
    """Number of nonzero entries of a dense or sparse matrix."""
    if sp.issparse(a):
        # Eliminate stored explicit zeros before counting.
        a = a.copy()
        if hasattr(a, "eliminate_zeros"):
            a = a.tocsr()
            a.eliminate_zeros()
        return int(a.nnz)
    return int(np.count_nonzero(np.asarray(a)))


def sketch_apply_cost(pi, a: MatrixLike) -> int:
    """Multiplication count of computing ``ΠA`` exploiting sparsity.

    For a sketch with exactly ``s`` nonzeros per column, applying it to
    ``A`` costs ``s · nnz(A)`` multiplications — the ``O(nnz(A) · s)``
    figure quoted in the paper's introduction.  We compute the exact count
    from the actual sparsity patterns: each nonzero ``A[k, j]`` is touched
    once per nonzero in column ``k`` of ``Π``.

    ``pi`` may be a dense array, a sparse matrix, or a matrix-free apply
    kernel (anything exposing ``per_column_nnz()``); the kernel path reads
    the pattern straight from the triplet representation, so no sketch
    matrix is ever assembled just to price its application.
    """
    if pi.shape[1] != a.shape[0]:
        raise ValueError(
            f"incompatible shapes: pi is {pi.shape}, a is {a.shape}"
        )
    if hasattr(pi, "per_column_nnz"):
        per_column = pi.per_column_nnz()
    elif sp.issparse(pi):
        per_column = np.diff(pi.tocsc().indptr)
    else:
        per_column = np.count_nonzero(np.asarray(pi), axis=0)
    if sp.issparse(a):
        a_csr = a.tocsr()
        row_nnz = np.diff(a_csr.indptr)
    else:
        row_nnz = np.count_nonzero(np.asarray(a), axis=1)
    return int(per_column @ row_nnz)


def densify(a: MatrixLike) -> np.ndarray:
    """Convert to a dense float ndarray (no copy when already dense)."""
    if sp.issparse(a):
        return np.asarray(a.toarray(), dtype=float)
    return np.asarray(a, dtype=float)


def columns_as_csc(a: MatrixLike) -> sp.csc_matrix:
    """View ``a`` as CSC for fast column slicing."""
    if sp.issparse(a):
        return a.tocsc()
    return sp.csc_matrix(np.asarray(a, dtype=float))
