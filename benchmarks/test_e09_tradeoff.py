"""Bench E9 — regenerates the sparsity trade-off table (Theorems 18/20).

Shape: every measured m*(s) with s <= 1/(9 eps) sits above the paper's
d^2-level floor.
"""


def test_e09_tradeoff(run_experiment_once):
    result = run_experiment_once("E9")
    assert result.metrics["floor_respected_everywhere"] == 1.0
    assert result.metrics["uniform_min_m_over_d2"] >= 1.0
