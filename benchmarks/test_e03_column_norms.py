"""Bench E3 — regenerates the Lemma 6 column-norm transition table.

Shape: failure jumps from ~0 to ~1 exactly as the column norm leaves
[1 - eps, 1 + eps].
"""


def test_e03_column_norms(run_experiment_once):
    result = run_experiment_once("E3")
    assert result.metrics["max_failure_inside"] <= 0.2
    assert result.metrics["min_failure_outside"] >= 0.8
