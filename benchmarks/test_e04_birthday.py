"""Bench E4 — regenerates the bucket-collision table (Lemma 7).

Shape: empirical collision probability tracks the exact birthday formula
across the m sweep.
"""


def test_e04_birthday(run_experiment_once):
    result = run_experiment_once("E4")
    assert result.metrics["max_empirical_vs_predicted_gap"] < 0.2
