"""Wall-clock speedup of the parallel trial engine.

The acceptance target for the trial engine is a ≥1.5× speedup on a 4-core
run of a 400-trial ``failure_estimate`` at ``m=2000, n=4000, d=8`` — with
bit-identical results, which this benchmark also asserts.  On machines
with fewer than 4 CPUs the speedup test is skipped (process-pool overhead
cannot be amortized without real parallel hardware), but the determinism
assertion still runs everywhere via tests/test_utils_parallel.py.
"""

import time

import pytest

from repro.core.tester import failure_estimate
from repro.utils.parallel import available_cpus
from repro.hardinstances.dbeta import DBeta
from repro.sketch.countsketch import CountSketch

TRIALS = 400
M, N, D = 2000, 4000, 8
EPSILON = 0.5
REQUIRED_CPUS = 4
TARGET_SPEEDUP = 1.5


def _timed_estimate(workers):
    started = time.perf_counter()
    est = failure_estimate(
        CountSketch(m=M, n=N), DBeta(n=N, d=D, reps=1), EPSILON,
        trials=TRIALS, rng=0, workers=workers,
    )
    return est, time.perf_counter() - started


@pytest.mark.skipif(
    available_cpus() < REQUIRED_CPUS,
    reason=f"needs ≥{REQUIRED_CPUS} available CPUs to demonstrate speedup",
)
def test_four_worker_speedup():
    serial_est, serial_time = _timed_estimate(workers=1)
    parallel_est, parallel_time = _timed_estimate(workers=REQUIRED_CPUS)
    assert parallel_est == serial_est  # determinism before speed
    speedup = serial_time / parallel_time
    print(
        f"\nserial {serial_time:.2f}s, {REQUIRED_CPUS} workers "
        f"{parallel_time:.2f}s -> {speedup:.2f}x"
    )
    assert speedup >= TARGET_SPEEDUP


def test_parallel_matches_serial_at_benchmark_size():
    """Determinism at the benchmark's own problem size (any CPU count)."""
    trials = 40  # enough to cross chunk boundaries, cheap enough anywhere
    serial = failure_estimate(
        CountSketch(m=M, n=N), DBeta(n=N, d=D, reps=1), EPSILON,
        trials=trials, rng=0, workers=1,
    )
    parallel = failure_estimate(
        CountSketch(m=M, n=N), DBeta(n=N, d=D, reps=1), EPSILON,
        trials=trials, rng=0, workers=2,
    )
    assert parallel == serial
