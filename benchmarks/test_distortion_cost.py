"""Benchmarks of the measurement substrate itself.

The Monte-Carlo experiments spend their time in two kernels: drawing a
hard instance and computing the exact distortion of ``ΠU`` (thin SVD).
These benches track both, including the structured fast path that makes
the threshold sweeps feasible.
"""

import pytest

from repro.hardinstances.dbeta import DBeta
from repro.linalg.distortion import distortion_of_product, sketched_basis
from repro.sketch.countsketch import CountSketch

N = 65536
D = 12
REPS = 2
M = 4096


@pytest.fixture(scope="module")
def fixtures():
    instance = DBeta(n=N, d=D, reps=REPS)
    sketch = CountSketch(m=M, n=N).sample(0)
    draw = instance.sample_draw(1)
    return instance, sketch, draw


def test_sample_hard_draw(benchmark, fixtures):
    instance, _, _ = fixtures
    benchmark(instance.sample_draw, 2)


def test_structured_sketched_basis(benchmark, fixtures):
    _, sketch, draw = fixtures
    product = benchmark(draw.sketched_basis, sketch.matrix)
    assert product.shape == (M, D)


def test_dense_sketched_basis_small(benchmark):
    """The generic dense path at a size where it is still reasonable."""
    instance = DBeta(n=2048, d=D, reps=REPS)
    sketch = CountSketch(m=512, n=2048).sample(0)
    draw = instance.sample_draw(1)
    product = benchmark(sketched_basis, sketch.matrix, draw.u)
    assert product.shape == (512, D)


def test_distortion_svd(benchmark, fixtures):
    _, sketch, draw = fixtures
    product = draw.sketched_basis(sketch.matrix)
    value = benchmark(distortion_of_product, product)
    assert value >= 0.0
