"""Bench E6 — regenerates the Lemma 4 / Fact 5 witness table.

Shape: escape probability >= 1/4 above the lambda > 2 boundary in all
three block-structure cases, and < 1/2 below it for the distinct case.
"""


def test_e06_witness(run_experiment_once):
    result = run_experiment_once("E6")
    assert result.metrics["min_escape_above_threshold"] >= 0.25
    assert result.metrics["max_escape_below_threshold"] <= 0.5
