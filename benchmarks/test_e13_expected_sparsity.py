"""Bench E13 — regenerates the expected-vs-exact sparsity tables.

Shape: expected-sparsity sketches fail at every m for small E[s]
(Lemma 6 violated pointwise); exact-sparsity OSNAP succeeds at large m.
"""


def test_e13_expected_sparsity(run_experiment_once):
    result = run_experiment_once("E13")
    assert result.metrics["sparsejl_min_failure_small_s"] >= 0.8
    assert result.metrics["osnap_failure_at_max_m"] <= 0.4
