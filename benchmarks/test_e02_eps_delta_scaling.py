"""Bench E2 — regenerates the eps/delta scaling tables (Theorem 8).

Shape: threshold ~ 1/eps^2 and ~ 1/delta (slope 1 against the exact
birthday scale).
"""


def test_e02_eps_delta_scaling(run_experiment_once):
    result = run_experiment_once("E2")
    assert result.metrics["slope_vs_inv_eps"] > 1.2
    assert 0.5 < result.metrics["slope_vs_birthday_delta_scale"] < 1.6
