"""Bench E14 — regenerates the two-stage escape table.

Shape: the CountSketch -> Gaussian composition reaches a final dimension
several times below the single sparse sketch's quadratic threshold.
"""


def test_e14_two_stage(run_experiment_once):
    result = run_experiment_once("E14")
    assert result.metrics["escape_factor"] > 2.0
