"""Throughput benchmarks: sketch application cost per family.

The introduction's computational claim — CountSketch applies in
``O(nnz(A))``, OSNAP in ``O(nnz(A)·s)``, SRHT in ``O(n log n)`` per
column, Gaussian in ``O(mn)`` per column — measured as wall-clock time of
``ΠA`` on a fixed tall matrix.
"""

import numpy as np
import pytest

from repro.sketch.countsketch import CountSketch
from repro.sketch.gaussian import GaussianSketch
from repro.sketch.osnap import OSNAP
from repro.sketch.srht import SRHT

N = 8192
D = 16
M = 1024


@pytest.fixture(scope="module")
def tall_matrix():
    rng = np.random.default_rng(0)
    return rng.standard_normal((N, D))


def _bench_apply(benchmark, family, tall_matrix):
    sketch = family.sample(1)
    result = benchmark(sketch.apply, tall_matrix)
    assert result.shape == (family.m, D)


def test_apply_countsketch(benchmark, tall_matrix):
    _bench_apply(benchmark, CountSketch(m=M, n=N), tall_matrix)


def test_apply_osnap_s4(benchmark, tall_matrix):
    _bench_apply(benchmark, OSNAP(m=M, n=N, s=4), tall_matrix)


def test_apply_osnap_s16(benchmark, tall_matrix):
    _bench_apply(benchmark, OSNAP(m=M, n=N, s=16), tall_matrix)


def test_apply_srht(benchmark, tall_matrix):
    _bench_apply(benchmark, SRHT(m=M, n=N), tall_matrix)


def test_apply_gaussian(benchmark, tall_matrix):
    _bench_apply(benchmark, GaussianSketch(m=M, n=N), tall_matrix)


def test_sample_countsketch(benchmark):
    family = CountSketch(m=M, n=N)
    benchmark(family.sample, 0)


def test_sample_osnap_s8(benchmark):
    family = OSNAP(m=M, n=N, s=8)
    benchmark(family.sample, 0)
