"""Shared helpers for the benchmark suite.

Each experiment benchmark runs its experiment exactly once (rounds=1) via
``pytest-benchmark``'s pedantic mode — the experiments are Monte-Carlo
sweeps whose wall-clock time is the quantity of interest, and repeated
rounds would multiply minutes of work for no statistical gain.  The
experiment's result tables are printed so a benchmark run regenerates the
EXPERIMENTS.md tables.
"""

import pytest

from repro.experiments.registry import run_experiment

#: Scale applied to every experiment benchmark.  0.25 keeps a full
#: benchmark pass in the minutes range; raise to 1.0 to regenerate the
#: EXPERIMENTS.md numbers at full fidelity.
BENCH_SCALE = 0.25


#: Worker processes for experiment trial loops during benchmarks.  The
#: default of 1 keeps timings comparable with historical runs; results are
#: bit-identical at any setting (see repro.utils.parallel), so raising it
#: only changes wall-clock time.
BENCH_WORKERS = 1


@pytest.fixture
def run_experiment_once(benchmark):
    """Run one experiment under the benchmark timer and print its tables."""

    def runner(experiment_id, scale=BENCH_SCALE, rng=0, workers=BENCH_WORKERS):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": scale, "rng": rng, "workers": workers},
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        return result

    return runner
