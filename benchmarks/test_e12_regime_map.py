"""Bench E12 — regenerates the lower-bound regime map (Section 1).

Shape: the paper's bound dominates NN14 wherever both apply, and the
quadratic-regime threshold improves from 1/eps^4 toward 1/eps^2.
"""


def test_e12_regime_map(run_experiment_once):
    result = run_experiment_once("E12")
    assert result.metrics["nn14_beats_theorem18_fraction"] == 0.0
    assert result.metrics["max_regime_improvement"] > 100
