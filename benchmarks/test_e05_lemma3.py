"""Bench E5 — regenerates the Lemma 3 anti-concentration table.

Shape: P[<u,v> >= -3 eps] > 2 eps on every adversarial family, including
the near-tight simplex.
"""


def test_e05_lemma3(run_experiment_once):
    result = run_experiment_once("E5")
    assert result.metrics["min_margin"] > 0.0
