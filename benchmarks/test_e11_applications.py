"""Bench E11 — regenerates the applications comparison tables
(introduction's motivation).

Shape: every oblivious family meets the sketch-and-solve guarantee;
CountSketch has the cheapest application; uniform row sampling breaks on
the coherent instance.
"""


def test_e11_applications(run_experiment_once):
    result = run_experiment_once("E11")
    assert result.metrics["oblivious_within_guarantee"] == 1.0
    assert result.metrics["rowsampling_coherent_ratio"] > 1.05
