"""Streaming-sketch throughput: row-block updates and shard merging.

Tracks the cost of the accumulate/merge path that makes CountSketch's
O(nnz) application usable incrementally (the database-engine pattern of
``examples/streaming_shards.py``).
"""

import numpy as np
import pytest

from repro.sketch.countsketch import CountSketch
from repro.sketch.streaming import StreamingSketcher

N = 16384
D = 8
M = 2048
BLOCK = 512


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    return rng.standard_normal((N, D))


def test_streaming_full_pass(benchmark, data):
    family = CountSketch(m=M, n=N)

    def run():
        sketcher = StreamingSketcher(family, columns=D, rng=7)
        for start in range(0, N, BLOCK):
            sketcher.update_matrix(data[start:start + BLOCK],
                                   start_row=start)
        return sketcher.result()

    result = benchmark(run)
    assert result.shape == (M, D)


def test_shard_merge(benchmark, data):
    family = CountSketch(m=M, n=N)
    half = N // 2
    left = StreamingSketcher(family, columns=D, rng=7)
    left.update_matrix(data[:half], start_row=0)

    def run():
        right = StreamingSketcher(family, columns=D, rng=7)
        right.update_matrix(data[half:], start_row=half)
        merged = StreamingSketcher(family, columns=D, rng=7)
        merged.merge(left)
        merged.merge(right)
        return merged.result()

    result = benchmark(run)
    batch = left.sketch.apply(data)
    assert np.allclose(result, batch)
