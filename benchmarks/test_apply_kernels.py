"""Kernel-vs-materialized throughput for the matrix-free apply path.

Unlike the other benchmark modules this one uses manual
``time.perf_counter`` timing instead of the ``pytest-benchmark`` fixture,
so it can double as a CI smoke test (CI installs only numpy/scipy/pytest/
hypothesis).  Scale via the ``REPRO_BENCH_SCALE`` environment variable:
``1.0`` (default) reproduces the reference numbers below; CI runs at
``0.05`` where only the bit-identity assertions are load-bearing and the
speedup assertions relax to sanity thresholds.

Two measurements:

* the Monte-Carlo *trial path* — per trial, turn ``Π``'s sampled
  (hash-row, sign) representation into ``ΠU`` for a structured ``D_β``
  draw.  The materialized route builds the scipy matrix (COO sort) and
  slices/combines its columns; the kernel route constructs the kernel and
  scatters straight into the ``(m, d)`` output.  RNG consumption and draw
  sampling are identical on both routes, so they are pre-computed outside
  the timer.  Reference grid (n=16384, d=64, s=1, m=1024): the kernel
  route is ≥5× faster.
* the dense *apply grid* — ``ΠA`` for tall dense ``A`` across
  ``(n, d, m, s)``, kernel dispatch vs. a pre-built sparse matmul,
  printed as a table.
"""

import os
import time

import numpy as np
import pytest

from repro.hardinstances.dbeta import DBeta, HardDraw
from repro.linalg.sparse_ops import from_triplets
from repro.sketch import CountSketch, OSNAP, sample_sketch
from repro.sketch.base import Sketch
from repro.sketch.kernels import ColumnScatterKernel

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
FULL_FIDELITY = SCALE >= 1.0

#: Reference grid of the acceptance measurement (full scale).
REF_N = max(256, int(16384 * SCALE))
REF_D = max(4, int(64 * min(1.0, 4 * SCALE)))
REF_M = max(REF_D + 1, int(1024 * min(1.0, 4 * SCALE)))
TRIALS = max(3, int(30 * min(1.0, 2 * SCALE)))


def _best_of(repeats, fn, *args):
    """Minimum wall-clock over ``repeats`` runs (noise-robust timing)."""
    best = np.inf
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, out


def _sample_representations(family, count):
    """Per-trial sampled (rows, values) representations of ``Π``.

    Sampled once, outside the timed regions: the RNG work is identical on
    both routes, so timing it would only dilute the comparison.
    """
    reprs = []
    for seed in np.random.SeedSequence(77).spawn(count):
        kernel = sample_sketch(family, seed, lazy=True).kernel
        arrays = kernel.representation()
        reprs.append((arrays["rows"], arrays["values"], kernel.shape))
    return reprs


def _materialized_trials(reprs, draws):
    """Per trial: build the scipy matrix, then slice-and-combine ``ΠU``."""
    out = []
    for (rows, values, shape), draw in zip(reprs, draws):
        s, n = rows.shape
        cols = np.broadcast_to(np.arange(n), (s, n))
        matrix = from_triplets(
            rows.ravel(), np.ascontiguousarray(cols).ravel(),
            values.ravel(), shape,
        )
        out.append(draw.sketched_basis(matrix))
    return out


def _kernel_trials(reprs, draws):
    """Per trial: construct the kernel, then scatter ``ΠU`` directly."""
    out = []
    for (rows, values, shape), draw in zip(reprs, draws):
        kernel = ColumnScatterKernel(rows, values, shape)
        out.append(kernel.sketched_basis(draw))
    return out


class TestTrialPathSpeedup:
    """The acceptance measurement: trial loop, kernel vs. materialized."""

    @pytest.mark.parametrize(
        "make_family,reps",
        [
            pytest.param(lambda: CountSketch(REF_M, REF_N), 1,
                         id="countsketch-s1"),
            pytest.param(lambda: OSNAP(REF_M, REF_N, s=4), 2,
                         id="osnap-s4"),
        ],
    )
    def test_kernel_trials_faster_and_bit_identical(self, make_family, reps):
        family = make_family()
        instance = DBeta(REF_N, REF_D, reps=reps)
        # Neither timed route reads ``draw.u`` (the structured path works
        # from rows/signs alone), so swap each 8 MB ``U`` for a
        # zero-stride broadcast — keeping 30 of them alive would thrash
        # the cache and time memory pressure instead of the kernels.
        draws = [
            HardDraw(
                u=np.broadcast_to(0.0, (REF_N, REF_D)),
                rows=drawn.rows, signs=drawn.signs, reps=drawn.reps,
            )
            for drawn in (
                instance.sample_draw(seed)
                for seed in np.random.SeedSequence(99).spawn(TRIALS)
            )
        ]
        reprs = _sample_representations(family, TRIALS)

        # Warm-up outside the timed region (allocator, caches).
        _kernel_trials(reprs[:2], draws[:2])
        _materialized_trials(reprs[:2], draws[:2])

        t_lazy, lazy_out = _best_of(10, _kernel_trials, reprs, draws)
        t_eager, eager_out = _best_of(10, _materialized_trials, reprs, draws)

        for got, want in zip(lazy_out, eager_out):
            assert np.array_equal(got, want)

        speedup = t_eager / t_lazy
        print(
            f"\n[{family.name}] n={REF_N} d={REF_D} m={REF_M} "
            f"trials={TRIALS}: eager {1e3 * t_eager:.2f} ms, "
            f"kernel {1e3 * t_lazy:.2f} ms, speedup {speedup:.1f}x"
        )
        if FULL_FIDELITY:
            assert speedup >= 5.0, (
                f"kernel trial path only {speedup:.2f}x faster "
                f"(acceptance floor is 5x at full scale)"
            )
        else:
            # Smoke scale: timings are noise-dominated; only require that
            # the kernel path is not pathologically slower.
            assert speedup >= 0.5

    def test_failure_estimate_unchanged_by_kernel_path(self):
        """End-to-end: estimates identical with and without the kernels."""
        import repro.core.tester as tester
        from repro.core.tester import failure_estimate

        family = CountSketch(REF_M, REF_N)
        instance = DBeta(REF_N, REF_D, reps=1)
        new = failure_estimate(
            family, instance, epsilon=0.5, trials=TRIALS,
            rng=np.random.SeedSequence(5),
        )

        def eager_no_kernel(fam, rng=None, lazy=False):
            sketch = fam.sample(rng)
            return Sketch(sketch.matrix, family=fam)

        original = tester.sample_sketch
        tester.sample_sketch = eager_no_kernel
        try:
            old = failure_estimate(
                family, instance, epsilon=0.5, trials=TRIALS,
                rng=np.random.SeedSequence(5),
            )
        finally:
            tester.sample_sketch = original
        assert new.successes == old.successes
        assert new.trials == old.trials


class TestDenseApplyGrid:
    """Kernel dispatch vs. sample-then-matmul across (n, d, m, s)."""

    def test_apply_grid_table(self):
        grid = [
            (4096, 1, 512, 1),
            (4096, 4, 512, 1),
            (4096, 64, 512, 1),
            (8192, 1, 1024, 4),
            (8192, 4, 1024, 4),
            (8192, 64, 1024, 4),
        ]
        rows = []
        for n, d, m, s in grid:
            n = max(128, int(n * SCALE))
            m = max(8, int(m * min(1.0, 4 * SCALE)))
            family = CountSketch(m, n) if s == 1 else OSNAP(m, n, s=s)
            eager = family.sample(np.random.SeedSequence(1))
            lazy = sample_sketch(
                family, np.random.SeedSequence(1), lazy=True
            )
            a = np.random.default_rng(2).standard_normal((n, d))
            t_kernel, out_kernel = _best_of(20, lazy.kernel.apply, a)
            t_matmul, out_matmul = _best_of(20, eager.matrix.__matmul__, a)
            assert np.array_equal(out_kernel, np.asarray(out_matmul))
            rows.append((n, d, m, s, 1e3 * t_kernel, 1e3 * t_matmul))

        header = f"{'n':>6} {'d':>3} {'m':>5} {'s':>2} " \
                 f"{'kernel ms':>10} {'matmul ms':>10}"
        print("\n" + header)
        for n, d, m, s, tk, tm in rows:
            print(f"{n:>6} {d:>3} {m:>5} {s:>2} {tk:>10.3f} {tm:>10.3f}")
        # Regression guard, not a victory condition: the scatter competes
        # with a *pre-built* compiled matmul here (the build cost it saves
        # is measured by the trial benchmark above), so only catch the
        # pathological case of the narrow path falling far behind.
        narrow = [r for r in rows if r[1] == 1]
        if FULL_FIDELITY:
            for n, d, m, s, tk, tm in narrow:
                assert tk <= 10.0 * tm
