"""Bench E10 — regenerates the heavy-entry mass-accounting table
(Lemma 19).

Shape: the per-level mass bound is sound on every family, and deflated
sketches (mass below (1-eps)^2) fail with certainty.
"""


def test_e10_heavy_budget(run_experiment_once):
    result = run_experiment_once("E10")
    assert result.metrics["mass_bound_sound_everywhere"] == 1.0
    assert result.metrics["min_failure_of_deflated"] >= 0.9
