"""Bench E8 — regenerates the Remark 10 tightness table.

Shape: the block-Hadamard OSE fails with certainty below m ~ d^2 and
succeeds above, following the birthday rate d^2/(2m).
"""


def test_e08_hadamard(run_experiment_once):
    result = run_experiment_once("E8")
    assert result.metrics["failure_at_smallest_m"] > 0.6
    assert result.metrics["failure_at_largest_m"] < 0.3
