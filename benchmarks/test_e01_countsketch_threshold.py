"""Bench E1 — regenerates the CountSketch-threshold-vs-d table
(Theorem 8).

The assertion encodes the reproduced shape: the hard-instance threshold
scales near-quadratically in d while the random-subspace control stays
near-linear.
"""


def test_e01_countsketch_threshold(run_experiment_once):
    result = run_experiment_once("E1")
    assert result.metrics["hard_slope_vs_d"] > 1.4
    assert (
        result.metrics["control_slope_vs_d"]
        < result.metrics["hard_slope_vs_d"]
    )
