"""Bench E7 — regenerates the Algorithm 1 pair-finding table
(Lemmas 12/13, Corollary 17).

Shape: the probability of finding a large-inner-product pair decays with
m, matching min{d^2/m, 1}.
"""


def test_e07_algorithm1(run_experiment_once):
    result = run_experiment_once("E7")
    assert (
        result.metrics["exhaustive_rate_at_small_m"]
        > result.metrics["exhaustive_rate_at_large_m"]
    )
