"""Batched-vs-serial throughput for the Monte-Carlo trial engine.

Like ``benchmarks/test_apply_kernels.py`` this uses manual
``time.perf_counter`` timing so it doubles as a CI smoke test.  Scale via
``REPRO_BENCH_SCALE``: ``1.0`` (default) reproduces the reference numbers
in ``docs/perf.md``; CI runs at ``0.05`` where only the equivalence
assertions are load-bearing and the speedup floor relaxes to a sanity
threshold.

The measurement is end-to-end :func:`distortion_samples` — seeding, the
batched sampler, the batch-axis scatter, the BLAS matmul, and the
gufunc-batched SVD reduction all inside the timer — against the serial
per-trial kernel path at the same seed.  Reference grid
(n=16384, d=64, m=1024, s ∈ {1, 4}): the batched path is ≥3× faster.
"""

import os
import time

import numpy as np
import pytest

from repro.core.tester import distortion_samples
from repro.hardinstances.dbeta import DBeta
from repro.sketch import OSNAP, CountSketch

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
FULL_FIDELITY = SCALE >= 1.0

#: Reference grid of the acceptance measurement (full scale).
REF_N = max(256, int(16384 * SCALE))
REF_D = max(4, int(64 * min(1.0, 4 * SCALE)))
REF_M = max(REF_D + 1, int(1024 * min(1.0, 4 * SCALE)))
TRIALS = max(8, int(64 * min(1.0, 2 * SCALE)))
BATCH = 32

SEED = 20220620

CASES = [
    pytest.param(lambda: CountSketch(REF_M, REF_N), 1, id="countsketch-s1"),
    pytest.param(lambda: OSNAP(REF_M, REF_N, s=4), 2, id="osnap-s4"),
]


def _best_of(repeats, fn, *args, **kwargs):
    """Minimum wall-clock over ``repeats`` runs (noise-robust timing)."""
    best = np.inf
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, out


def _run(family, instance, **kwargs):
    return distortion_samples(
        family, instance, trials=TRIALS,
        rng=np.random.SeedSequence(SEED), **kwargs,
    )


class TestBatchedTrialSpeedup:
    """The acceptance measurement: distortion_samples, batched vs serial."""

    @pytest.mark.parametrize("make_family,reps", CASES)
    def test_batched_trials_faster_and_equivalent(self, make_family, reps):
        family = make_family()
        instance = DBeta(REF_N, REF_D, reps=reps)

        # Warm-up outside the timed region (allocator, BLAS threads).
        _run(family, instance, batch=BATCH)
        _run(family, instance)

        t_batched, batched = _best_of(3, _run, family, instance, batch=BATCH)
        t_serial, serial = _best_of(3, _run, family, instance)

        # Same seed, same trial streams: the batched engine must reproduce
        # the serial values to SVD tolerance at every scale.
        np.testing.assert_allclose(batched, serial, rtol=1e-9, atol=1e-12)

        speedup = t_serial / t_batched
        print(
            f"\n[{family.name}] n={REF_N} d={REF_D} m={REF_M} "
            f"trials={TRIALS} batch={BATCH}: serial {1e3 * t_serial:.1f} ms, "
            f"batched {1e3 * t_batched:.1f} ms, speedup {speedup:.2f}x"
        )
        if FULL_FIDELITY:
            assert speedup >= 3.0, (
                f"batched trial engine only {speedup:.2f}x faster "
                f"(acceptance floor is 3x at full scale)"
            )
        else:
            # Smoke scale: timings are noise-dominated; only require that
            # batching is not pathologically slower.
            assert speedup >= 0.3

    @pytest.mark.parametrize("make_family,reps", CASES)
    def test_batch_one_is_bit_identical_to_serial(self, make_family, reps):
        """batch=1 delegates to the serial path — bitwise, at every scale."""
        family = make_family()
        instance = DBeta(REF_N, REF_D, reps=reps)
        assert np.array_equal(
            _run(family, instance, batch=1), _run(family, instance)
        )

    def test_parallel_batched_is_bit_identical_to_serial_batched(self):
        """workers=2 with batch-sized chunks reproduces workers=1 bitwise."""
        family = CountSketch(REF_M, REF_N)
        instance = DBeta(REF_N, REF_D, reps=1)
        one = _run(family, instance, batch=8)
        two = _run(family, instance, batch=8, workers=2)
        assert np.array_equal(one, two)
