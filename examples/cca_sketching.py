"""Sketched canonical correlation analysis.

CCA between two views of the same samples is one of the applications the
paper's introduction cites (Avron et al., SISC 2014).  We build two
correlated views, compute exact canonical correlations, then recompute
them from sketched samples with several OSE families and report the
additive errors.

    python examples/cca_sketching.py
"""

import numpy as np

from repro.apps import canonical_correlations, sketched_cca
from repro.sketch import SRHT, CountSketch, GaussianSketch, OSNAP
from repro.utils import TextTable


def main():
    rng = np.random.default_rng(0)
    n, p, q = 4096, 5, 4

    # Two views sharing a 3-dimensional latent signal.
    latent = rng.standard_normal((n, 3))
    x = latent @ rng.standard_normal((3, p)) + \
        0.6 * rng.standard_normal((n, p))
    y = latent @ rng.standard_normal((3, q)) + \
        0.6 * rng.standard_normal((n, q))

    exact = canonical_correlations(x, y)
    print(f"{n} samples; exact canonical correlations: "
          f"{np.round(exact, 4)}\n")

    table = TextTable(
        title="sketched CCA (additive error per family)",
        columns=["family", "m", "max |corr error|"],
    )
    families = [
        CountSketch(m=1024, n=n),
        OSNAP(m=512, n=n, s=4),
        SRHT(m=512, n=n),
        GaussianSketch(m=384, n=n),
    ]
    for family in families:
        result = sketched_cca(x, y, family, rng=1)
        table.add_row([family.name, family.m, result.max_error])
    print(table)
    print(
        "\nall OSE families recover every canonical correlation to a few "
        "hundredths at a 4-10x sample compression."
    )


if __name__ == "__main__":
    main()
