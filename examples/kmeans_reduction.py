"""Dimensionality reduction for k-means with sparse sketches.

Cluster high-dimensional points after sketching their feature space with
CountSketch / OSNAP / SRHT and compare the clustering cost on the
original points against clustering them directly — the k-means use case
the paper's introduction cites (Boutsidis et al., Cohen et al.).

    python examples/kmeans_reduction.py
"""

from repro.apps import kmeans_cost, lloyd_kmeans, sketched_kmeans
from repro.experiments import clustered_points
from repro.sketch import SRHT, CountSketch, OSNAP
from repro.utils import TextTable


def main():
    features, k = 4096, 4
    points, truth = clustered_points(
        count=200, n=features, k=k, spread=0.08, rng=0
    )
    base_labels, _ = lloyd_kmeans(points, k, rng=1)
    base_cost = kmeans_cost(points, base_labels)
    print(f"{points.shape[0]} points in R^{features}, k = {k}")
    print(f"baseline Lloyd's cost (no sketching): {base_cost:.3f}")
    print(f"ground-truth partition cost:          "
          f"{kmeans_cost(points, truth):.3f}\n")

    table = TextTable(
        title="k-means after feature sketching",
        columns=["family", "m", "cost ratio vs unsketched"],
    )
    families = [
        CountSketch(m=512, n=features),
        OSNAP(m=256, n=features, s=4),
        SRHT(m=256, n=features),
    ]
    for family in families:
        result = sketched_kmeans(points, k, family, rng=2)
        table.add_row([family.name, family.m, result.cost_ratio])
    print(table)
    print(
        "\ncost ratios near 1.0: the sketched clusterings are as good as "
        "clustering the raw points, at a fraction of the dimension."
    )


if __name__ == "__main__":
    main()
