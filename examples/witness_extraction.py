"""Extract an explicit Lemma 4 witness against an undersized sketch.

This walks the paper's lower-bound argument on a concrete matrix: an
abundant block-Hadamard sketch with m far below d^2 is fed the hard
instance D_1; Algorithm 1 finds a colliding column pair of Pi V with a
large inner product, and Lemma 4 converts it into a unit vector u whose
sketched norm provably anti-concentrates.

    python examples/witness_extraction.py
"""

import numpy as np

from repro.core import certify, witness_from_algorithm1
from repro.hardinstances import DBeta
from repro.sketch import HadamardBlockSketch


def main():
    epsilon = 1 / 32
    n, d = 2048, 16
    # The Remark 10 construction *would* work at m = O(d^2/delta); give it
    # only m = 64 << d^2 = 256 rows so Theorem 9 applies.
    family = HadamardBlockSketch(m=64, n=n, block_order=4)
    pi = family.sample(rng=0).matrix
    instance = DBeta(n=n, d=d, reps=1)

    print(f"Pi: {pi.shape[0]} x {pi.shape[1]}, column sparsity "
          f"{family.block_order}, d = {d} (d^2 = {d * d})\n")

    # --- global verdict -------------------------------------------------
    cert = certify(pi, instance, epsilon, delta=0.1, trials=60,
                   strategy="svd", rng=1)
    print(f"certification: {cert}\n")

    # --- one explicit witness -------------------------------------------
    for seed in range(50):
        draw = instance.sample_draw(rng=seed)
        report = witness_from_algorithm1(pi, draw, epsilon, rng=seed)
        if report is not None:
            print("witness found via Algorithm 1 + Lemma 4:")
            print(f"  V-columns p={report.p}, q={report.q} "
                  f"(Pi columns {draw.rows[report.p]}, "
                  f"{draw.rows[report.q]})")
            print(f"  inner product <Pi_p, Pi_q> = "
                  f"{report.inner_product:+.4f} "
                  f"(threshold {report.threshold:.4f})")
            nz = np.flatnonzero(report.u)
            print(f"  witness vector u: support {list(nz)}, "
                  f"values {report.u[nz]}")
            print(f"  measured P[ ||Pi U u||^2 escapes "
                  f"[(1-eps)^2, (1+eps)^2] ] = {report.escape} "
                  f"(Lemma 4 promises >= 1/4)")
            break
    else:
        print("no witness found in 50 draws (unexpected at this m)")


if __name__ == "__main__":
    main()
