"""Distributed sketch-and-solve: shard, stream, merge.

Sketches are linear, so a tall matrix living on several shards can be
sketched in parallel — each shard streams its rows through the *same*
seeded sketch — and the small accumulators merged by addition.  The
merged sketch then solves the regression exactly as if the data had been
sketched centrally.  This is the pattern that makes CountSketch's
O(nnz) application (whose target dimension the paper proves cannot be
improved) usable inside database engines.

    python examples/streaming_shards.py
"""

import numpy as np

from repro.apps import lstsq
from repro.experiments import regression_problem
from repro.sketch import CountSketch, StreamingSketcher


def main():
    n, d = 16384, 8
    shards = 4
    a, b = regression_problem(n, d, noise=0.3, rng=0)
    data = np.column_stack([a, b])  # sketch [A | b] jointly

    family = CountSketch(m=4096, n=n)
    seed = 12345  # the one piece of shared state across shards

    # Each "shard" sketches its own row range independently.
    boundaries = np.linspace(0, n, shards + 1, dtype=int)
    sketchers = []
    for k in range(shards):
        lo, hi = boundaries[k], boundaries[k + 1]
        sketcher = StreamingSketcher(family, columns=d + 1, rng=seed)
        # Stream in small row blocks, as an engine scanning pages would.
        for start in range(lo, hi, 512):
            stop = min(start + 512, hi)
            sketcher.update_matrix(data[start:stop], start_row=start)
        sketchers.append(sketcher)
        print(f"shard {k}: rows [{lo}, {hi}) -> accumulator "
              f"{sketcher.result().shape}")

    # Merge the accumulators (order irrelevant).
    merged = sketchers[0]
    for other in sketchers[1:]:
        merged.merge(other)
    sketched = merged.result()
    print(f"\nmerged sketch: {sketched.shape}, rows seen "
          f"{merged.rows_seen}")

    # Verify: identical to sketching centrally, then solve.
    central = merged.sketch.apply(data)
    print("merged == central sketch:",
          bool(np.allclose(sketched, central)))

    sa, sb = sketched[:, :d], sketched[:, d]
    x_sketched, *_ = np.linalg.lstsq(sa, sb, rcond=None)
    x_exact = lstsq(a, b)
    res_sketched = np.linalg.norm(a @ x_sketched - b)
    res_exact = np.linalg.norm(a @ x_exact - b)
    print(f"residual ratio (sketched / exact): "
          f"{res_sketched / res_exact:.4f}")


if __name__ == "__main__":
    main()
