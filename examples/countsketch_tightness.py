"""Reproduce Theorem 8's shape live: CountSketch needs m ~ d^2/(eps^2 delta).

Sweeps d and eps, locating the minimal target dimension on the paper's
Section 3 hard mixture and fitting the scaling exponents, then contrasts
with a Haar-random subspace where the quadratic law disappears.

    python examples/countsketch_tightness.py
"""

from repro.core import minimal_m, theorem8_lower_bound
from repro.hardinstances import SpikedSubspace, section3_mixture
from repro.sketch import CountSketch
from repro.utils import TextTable, fit_power_law


def main():
    epsilon, delta = 1 / 16, 0.2
    reps = round(1 / (8 * epsilon))

    # --- d sweep -------------------------------------------------------
    table = TextTable(
        title=f"minimal m vs d (eps={epsilon:g}, delta={delta:g})",
        columns=["d", "m* (hard)", "m* (random subspace)",
                 "theorem8 shape"],
    )
    hard_points, easy_points = [], []
    for d in (4, 6, 8, 12):
        q = reps * d
        n = max(4096, 4 * q * q)
        hard = section3_mixture(n=n, d=d, epsilon=epsilon)
        search = minimal_m(
            CountSketch(m=q, n=n), hard, epsilon, delta, trials=60,
            m_min=q, rng=d,
        )
        easy = SpikedSubspace(n=2048, d=d, alpha=0.0)
        control = minimal_m(
            CountSketch(m=4, n=2048), easy, epsilon, delta, trials=30,
            m_min=4, rng=100 + d,
        )
        table.add_row([
            d, search.m_star, control.m_star,
            theorem8_lower_bound(d, epsilon, delta),
        ])
        hard_points.append((d, search.m_star))
        easy_points.append((d, control.m_star))
    print(table)
    slope_hard, _ = fit_power_law(*zip(*hard_points))
    slope_easy, _ = fit_power_law(*zip(*easy_points))
    print(f"\nfitted exponent of m* vs d: hard instance {slope_hard:.2f} "
          f"(paper: 2), random control {slope_easy:.2f} (expected ~1)")

    # --- eps sweep -------------------------------------------------------
    d = 8
    table = TextTable(
        title=f"minimal m vs eps (d={d}, delta={delta:g})",
        columns=["1/eps", "m* (hard)"],
    )
    points = []
    for inv_eps in (16, 24, 32, 48):
        eps = 1 / inv_eps
        q = round(1 / (8 * eps)) * d
        n = max(4096, 4 * q * q)
        hard = section3_mixture(n=n, d=d, epsilon=eps)
        search = minimal_m(
            CountSketch(m=q, n=n), hard, eps, delta, trials=60,
            m_min=q, rng=inv_eps,
        )
        table.add_row([inv_eps, search.m_star])
        points.append((inv_eps, search.m_star))
    print()
    print(table)
    slope, _ = fit_power_law(*zip(*points))
    print(f"\nfitted exponent of m* vs 1/eps: {slope:.2f} (paper: 2)")


if __name__ == "__main__":
    main()
