"""Replay the lower-bound proofs on concrete matrices.

Walks Theorem 8's chain (Lemma 6 → Lemma 7 → birthday count) and
Theorem 9's chain (abundance → good columns → Algorithm 1 → row bound)
on three sketches: an undersized CountSketch, a properly sized one, and
a sub-d² block-Hadamard matrix — printing, per proof step, the quantity
the proof constrains, the constraint, and the verdict.

    python examples/proof_replay.py
"""

from repro.core import replay_theorem8, replay_theorem9
from repro.sketch import CountSketch, HadamardBlockSketch


def main():
    n = 4096
    d, epsilon, delta = 8, 1 / 16, 0.1

    print("--- an undersized CountSketch (m = 64) ---------------------")
    pi = CountSketch(m=64, n=n).sample(0).matrix
    print(replay_theorem8(pi, d, epsilon, delta, trials=60, rng=1))

    print("\n--- the same family at the safe dimension (m = 20000) ----")
    pi = CountSketch(m=20000, n=n).sample(0).matrix
    print(replay_theorem8(pi, d, epsilon, delta, trials=60, rng=2))

    print("\n--- Theorem 9 on a sub-d^2 abundant matrix ---------------")
    d9, eps9 = 16, 1 / 36
    pi = HadamardBlockSketch(m=64, n=2048, block_order=4).sample(0).matrix
    print(replay_theorem9(pi, d9, eps9, delta, trials=40, rng=3))


if __name__ == "__main__":
    main()
