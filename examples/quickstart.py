"""Quickstart: sample a sketch, test the subspace-embedding property.

Runs in a few seconds:

    python examples/quickstart.py
"""

from repro.core import (
    failure_estimate,
    minimal_m,
    theorem8_lower_bound,
)
from repro.hardinstances import DBeta, section3_mixture
from repro.linalg import distortion
from repro.sketch import CountSketch, GaussianSketch


def main():
    d, epsilon, delta = 6, 1 / 16, 0.2
    n = 4096

    # --- one concrete draw -------------------------------------------
    instance = DBeta(n=n, d=d, reps=1)  # the paper's D_1 hard instance
    u = instance.sample(rng=0)
    sketch = CountSketch(m=2048, n=n).sample(rng=1)
    print(f"one CountSketch draw: distortion on D_1 = "
          f"{distortion(sketch.matrix, u):.4f} (eps = {epsilon:.4f})")

    # --- failure probability over the hard mixture -------------------
    hard = section3_mixture(n=n, d=d, epsilon=epsilon)
    for m in (64, 512, 4096):
        family = CountSketch(m=m, n=n)
        est = failure_estimate(family, hard, epsilon, trials=100, rng=2)
        print(f"CountSketch m={m:5d}: failure probability {est}")

    # --- minimal dimension vs the Theorem 8 prediction ---------------
    search = minimal_m(
        CountSketch(m=16, n=n), hard, epsilon, delta, trials=60,
        m_min=16, rng=3,
    )
    print(f"\nempirical minimal m for (eps={epsilon:g}, delta={delta:g}): "
          f"{search.m_star}")
    print(f"Theorem 8 lower-bound shape d^2/(eps^2 delta) = "
          f"{theorem8_lower_bound(d, epsilon, delta):.0f} "
          f"(up to the absolute constant)")

    # --- the dense baseline needs far fewer rows ----------------------
    m_gauss = GaussianSketch.recommended_m(d, epsilon, delta)
    est = failure_estimate(
        GaussianSketch(m=m_gauss, n=n), hard, epsilon, trials=30, rng=4
    )
    print(f"\nGaussian baseline at m={m_gauss}: failure {est}")
    print("(dense sketches escape the quadratic bound; sparse ones cannot)")


if __name__ == "__main__":
    main()
