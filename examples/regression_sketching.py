"""Sketch-and-solve least squares with every sketch family.

The introduction's motivating workload: solve an overdetermined
regression by sketching, compare realized error ratios against the
``(1+ε)/(1-ε)`` guarantee, and observe the cost/dimension trade-off —
including why uniform row sampling (non-oblivious) breaks on coherent
inputs.

    python examples/regression_sketching.py
"""

import numpy as np

from repro.apps import error_ratio_bound, sketched_lstsq
from repro.experiments import regression_problem
from repro.sketch import (
    CountSketch,
    GaussianSketch,
    OSNAP,
    RowSampling,
    SRHT,
)
from repro.utils import TextTable


def main():
    n, d = 8192, 6
    epsilon, delta = 0.25, 0.2

    a_easy, b_easy = regression_problem(n, d, noise=0.3, rng=0)
    a_hard, b_hard = regression_problem(
        n, d, noise=0.3, coherent=True, rng=1
    )

    s = OSNAP.recommended_s(d + 1, epsilon, delta)
    families = [
        CountSketch(
            m=min(n, CountSketch.recommended_m(d + 1, epsilon, delta)), n=n
        ),
        OSNAP(
            m=min(n, OSNAP.recommended_m(d + 1, epsilon, delta)), n=n, s=s
        ),
        SRHT(m=min(n, SRHT.recommended_m(d + 1, epsilon, delta)), n=n),
        GaussianSketch(
            m=min(n, GaussianSketch.recommended_m(d + 1, epsilon, delta)),
            n=n,
        ),
        RowSampling(m=1024, n=n),
    ]

    table = TextTable(
        title=(
            f"sketch-and-solve regression (n={n}, d={d}, "
            f"guarantee ratio <= {error_ratio_bound(epsilon):.3f})"
        ),
        columns=["family", "m", "ratio (incoherent)", "ratio (coherent)",
                 "apply cost"],
    )
    for family in families:
        easy = sketched_lstsq(a_easy, b_easy, family, rng=2)
        hard = sketched_lstsq(a_hard, b_hard, family, rng=3)
        table.add_row([
            family.name, family.m, easy.ratio, hard.ratio,
            easy.sketch_cost,
        ])
    print(table)
    print(
        "\nCountSketch applies at cost ~nnz(A) but pays m = Theta(d^2) — "
        "the paper proves this dimension cannot be improved.\n"
        "Row sampling is cheapest of all but silently fails on the "
        "coherent instance (ratio >> guarantee): obliviousness matters."
    )


if __name__ == "__main__":
    main()
