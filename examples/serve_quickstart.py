"""Quickstart for the estimation server — also the CI smoke driver.

Start a server (in another terminal, or let this script do it)::

    PYTHONPATH=src python -m repro.serve --port 8400 --cache-dir cache/

then::

    PYTHONPATH=src python examples/serve_quickstart.py http://127.0.0.1:8400

The script issues the same ``failure_estimate`` request twice and checks
the serving contract end to end:

* the second response is answered from the shared probe cache
  (``cache.misses == 0``);
* its ``result`` payload is byte-identical to the cold one — the cache
  is invisible to results;
* the ``replay`` envelope names the exact offline computation
  (seed fingerprint + normalized params), so either response can be
  reproduced without the server.

Exits nonzero on any violated expectation (CI treats this as the smoke
gate's verdict).
"""

from __future__ import annotations

import json
import sys

from repro.serve.client import ServeClient

REQUEST = {
    "family": {"type": "CountSketch", "params": {"m": 16, "n": 64}},
    "instance": {"type": "PermutedIdentity", "n": 64, "d": 4},
    "epsilon": 0.5,
    "trials": 60,
    "seed": 0,
}


def main(argv: list) -> int:
    base_url = argv[0] if argv else "http://127.0.0.1:8400"
    client = ServeClient(base_url)

    health = client.healthz()
    print(f"healthz: {health['status']} "
          f"(inflight {health['inflight']}/{health['max_inflight']})")
    if health["status"] != "ok":
        print("FAIL: server is not healthy", file=sys.stderr)
        return 1

    cold = client.call("failure_estimate", REQUEST)
    print(f"cold:  {cold['result']['successes']}/"
          f"{cold['result']['trials']} failures, "
          f"cache {cold['cache']}")

    warm = client.call("failure_estimate", REQUEST)
    print(f"warm:  {warm['result']['successes']}/"
          f"{warm['result']['trials']} failures, "
          f"cache {warm['cache']}")

    failures = []
    if warm["cache"]["misses"] != 0 or warm["cache"]["hits"] < 1:
        failures.append(
            f"warm request was not served from cache: {warm['cache']}"
        )
    cold_bytes = json.dumps(cold["result"], sort_keys=True)
    warm_bytes = json.dumps(warm["result"], sort_keys=True)
    if cold_bytes != warm_bytes:
        failures.append("warm result payload differs from cold")
    if cold["replay"]["seed_fingerprint"] is None:
        failures.append("response carries no seed fingerprint")
    if cold["replay"]["key"] != warm["replay"]["key"]:
        failures.append("identical requests hashed to different keys")

    fingerprint = cold["replay"]["seed_fingerprint"]
    print(f"replay: seed={cold['replay']['seed']} "
          f"entropy={fingerprint['entropy']} "
          f"key={cold['replay']['key'][:16]}…")

    metrics = client.metrics()
    print(f"metrics: {metrics['server']}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: warm hit, byte-identical result, replayable")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
